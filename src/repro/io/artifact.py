"""Versioned model artifacts: train once, score without refitting.

A trained method (the Fairwos trainer or any baseline that retains its
model) is persisted as a *directory bundle*::

    artifact/
        manifest.json   schema version, method kind, resolved config,
                        dataset fingerprints, index + file inventory
        model.npz       encoder + classifier weights (namespaced
                        state-dicts via repro.io.model_io.pack_state)
        arrays.npz      the fitted preprocessing state: X(0) pseudo
                        matrix, binarized attributes, pseudo-labels,
                        standardization moments, column selections
        index.npz       the standing counterfactual index — RP-forest
                        tree arrays + routing tables + update counter
                        (kind "ann") or the exact point matrix (kind
                        "exact")
        graph.npz       optional bundled training graph (save_graph),
                        so `repro score --artifact PATH` is
                        self-contained

Everything is plain ``.npz`` + JSON — no pickling, so artifacts are safe
to load from untrusted storage and diffable across library versions.

:func:`save_artifact` writes the bundle; :func:`load_artifact` validates
the manifest (schema version, member inventory) with explicit
:class:`ArtifactError`\\ s on mismatch and reconstructs the method in eval
mode.  The returned :class:`ModelArtifact` scores node batches through
:func:`repro.training.engine.predict_logits_batched` (bit-identical to the
in-memory trainer at the same weights), retrieves per-user counterfactuals
from the persisted index without a rebuild, and emits fairness audits —
including the per-window drift report of
:func:`repro.fairness.audit.audit_prediction_windows`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.baselines import FairGKD, KSMOTE, FairRF, RemoveR, Vanilla
from repro.baselines.base import BaselineMethod
from repro.core import FairwosConfig, FairwosTrainer
from repro.core.ann import EXHAUSTIVE, RPForestIndex, exact_topk
from repro.core.counterfactual import CounterfactualIndex, CounterfactualSearch
from repro.core.encoder import EncoderModule
from repro.gnnzoo import make_backbone
from repro.graph import Graph
from repro.io.graph_io import load_graph, save_graph
from repro.io.model_io import pack_state, unpack_state
from repro.tensor import Tensor, no_grad
from repro.training import embed_batched, predict_logits, predict_logits_batched

__all__ = ["ArtifactError", "ModelArtifact", "save_artifact", "load_artifact"]

#: Manifest schema version.  Bumped on any incompatible layout change;
#: :func:`load_artifact` refuses other versions with a clear error.
ARTIFACT_VERSION = 1

_MANIFEST = "manifest.json"
_MODEL = "model.npz"
_ARRAYS = "arrays.npz"
_INDEX = "index.npz"
_GRAPH = "graph.npz"

_BASELINE_CLASSES: dict[str, type[BaselineMethod]] = {
    "Vanilla": Vanilla,
    "RemoveR": RemoveR,
    "KSMOTE": KSMOTE,
    "FairRF": FairRF,
    "FairGKD": FairGKD,
}


class ArtifactError(ValueError):
    """A model artifact is missing, corrupt, or from another schema."""


# --------------------------------------------------------------------- #
# Fingerprints
# --------------------------------------------------------------------- #
def _fingerprint(array: np.ndarray) -> str:
    """sha256 over dtype, shape and raw bytes of one array."""
    array = np.ascontiguousarray(array)
    digest = hashlib.sha256()
    digest.update(str(array.dtype).encode())
    digest.update(str(array.shape).encode())
    digest.update(array.tobytes())
    return digest.hexdigest()


def graph_fingerprints(graph: Graph) -> dict[str, str]:
    """Per-component content hashes identifying a dataset + split."""
    adjacency = graph.adjacency.tocsr()
    return {
        "features": _fingerprint(graph.features),
        "labels": _fingerprint(graph.labels),
        "sensitive": _fingerprint(graph.sensitive),
        "train_mask": _fingerprint(graph.train_mask),
        "val_mask": _fingerprint(graph.val_mask),
        "test_mask": _fingerprint(graph.test_mask),
        "adjacency": _fingerprint(adjacency.data)
        + _fingerprint(adjacency.indices)[:16]
        + _fingerprint(adjacency.indptr)[:16],
    }


def _jsonify(value):
    """Recursively convert numpy scalars/arrays for json.dumps."""
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_jsonify(v) for v in value.tolist()]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


# --------------------------------------------------------------------- #
# Save
# --------------------------------------------------------------------- #
def save_artifact(
    model,
    graph: Graph,
    path: str | Path,
    include_graph: bool = True,
    execution=None,
) -> Path:
    """Persist a fitted method as a versioned artifact directory.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.core.trainer.FairwosTrainer`, or a fitted
        :class:`~repro.baselines.base.BaselineMethod` whose training path
        retained its model (``model_``).  Methods with bespoke training
        loops that never set ``model_`` raise :class:`ArtifactError`.
    graph:
        The training graph — fingerprinted into the manifest (and bundled
        verbatim unless ``include_graph=False``) so the serving side can
        verify it scores what was trained on.
    path:
        Target directory (created; an existing *artifact* directory is
        overwritten member-by-member).
    include_graph:
        Bundle the graph via :func:`repro.io.save_graph` so ``repro
        score --artifact PATH`` needs no dataset flag.  Disable for very
        large graphs stored elsewhere.
    execution:
        The resolved :class:`~repro.core.config.ExecutionConfig` the model
        was trained under; persisted verbatim into the manifest
        (``manifest["execution"]``) so a run is reproducible from its
        artifact alone (``repro run --save`` passes it automatically).

    Returns the artifact directory path.
    """
    path = Path(path)
    if path.exists() and not path.is_dir():
        raise ArtifactError(f"artifact path {path} exists and is not a directory")
    path.mkdir(parents=True, exist_ok=True)

    if isinstance(model, FairwosTrainer):
        manifest = _save_fairwos(model, graph, path)
    elif isinstance(model, BaselineMethod):
        manifest = _save_baseline(model, graph, path)
    else:
        raise ArtifactError(
            f"cannot persist {type(model).__name__}; expected a fitted "
            f"FairwosTrainer or BaselineMethod"
        )

    manifest["format_version"] = ARTIFACT_VERSION
    if execution is not None:
        manifest["execution"] = _jsonify(asdict(execution))
    manifest["dataset"] = {
        "name": graph.name,
        "num_nodes": int(graph.num_nodes),
        "num_features": int(graph.num_features),
        "fingerprints": graph_fingerprints(graph),
    }
    if include_graph:
        save_graph(graph, path / _GRAPH)
    manifest["files"] = sorted(
        member.name for member in path.iterdir() if member.name != _MANIFEST
    )
    (path / _MANIFEST).write_text(
        json.dumps(_jsonify(manifest), indent=2, sort_keys=True) + "\n"
    )
    return path


def _save_fairwos(trainer: FairwosTrainer, graph: Graph, path: Path) -> dict:
    if trainer.classifier is None or trainer._pseudo_features is None:
        raise ArtifactError("trainer has not been fitted; call fit() first")
    if trainer._pseudo_stats is None or trainer._binary_attrs is None:
        raise ArtifactError(
            "trainer predates the serving-state contract; re-run fit() with "
            "this library version before saving"
        )
    config = trainer.config
    if not isinstance(config.cf_backend, str):
        raise ArtifactError(
            "cf_backend is a custom object; only 'exact'/'ann' string "
            "backends are persistable"
        )
    try:
        config_dict = _jsonify(asdict(config))
        json.dumps(config_dict)
    except TypeError as exc:
        raise ArtifactError(
            f"config is not JSON-serializable ({exc}); drop non-primitive "
            f"cf_backend_options before saving"
        ) from exc

    model_arrays = pack_state(trainer.classifier, "classifier/")
    if trainer.encoder is not None:
        model_arrays.update(pack_state(trainer.encoder.network, "encoder/"))
    np.savez_compressed(path / _MODEL, **model_arrays)

    stats = trainer._pseudo_stats
    arrays = {
        "pseudo": trainer._pseudo_features.data,
        "binary_attrs": trainer._binary_attrs,
        "pseudo_labels": trainer._pseudo_labels,
        "pseudo_mean": stats["mean"],
        "pseudo_std": stats["std"],
    }
    if stats["keep"] is not None:
        arrays["pseudo_keep"] = stats["keep"]
    np.savez_compressed(path / _ARRAYS, **arrays)

    index_meta = _save_index(trainer, graph, path)
    return {
        "kind": "fairwos",
        "method": "Fairwos",
        "config": config_dict,
        "has_encoder": trainer.encoder is not None,
        "index": index_meta,
    }


def _save_index(trainer: FairwosTrainer, graph: Graph, path: Path) -> dict:
    """Persist the standing counterfactual index (or a fresh exact one).

    The live backend is saved verbatim — an ANN forest keeps its tree
    arrays, routing tables, seed and update counter, so restored retrieval
    is bit-identical without a rebuild.  A trainer that never built an
    index (``use_fairness=False``) gets an exact index over freshly
    embedded representations so counterfactual retrieval still works.
    """
    backend = getattr(trainer._search, "backend", None)
    index = getattr(backend, "_index", None)
    if index is not None and index.num_points:
        np.savez_compressed(path / _INDEX, **index.to_arrays())
        return {
            "kind": "ann",
            "num_points": int(index.num_points),
            "num_trees": int(index.num_trees),
            "update_count": int(index.update_count),
        }
    points = getattr(backend, "_points", None)
    if points is None:
        points = _embed_full(trainer, graph.adjacency)
    np.savez_compressed(path / _INDEX, points=np.asarray(points, dtype=np.float64))
    return {"kind": "exact", "num_points": int(np.asarray(points).shape[0])}


def _embed_full(trainer: FairwosTrainer, adjacency) -> np.ndarray:
    """Exact full-graph representations of the fitted classifier."""
    features = trainer._pseudo_features
    if trainer.config.minibatch:
        return embed_batched(
            trainer.classifier,
            features.data,
            adjacency,
            batch_size=trainer.config.batch_size,
        )
    classifier = trainer.classifier
    was_training = classifier.training
    classifier.eval()
    with no_grad():
        reps = classifier.embed(features, adjacency).data.copy()
    classifier.train(was_training)
    return reps


def _save_baseline(method: BaselineMethod, graph: Graph, path: Path) -> dict:
    model = getattr(method, "model_", None)
    if model is None:
        raise ArtifactError(
            f"{type(method).__name__} did not retain a trained model "
            f"(model_ is unset) — fit it first, or note that methods with "
            f"bespoke training paths are not persistable"
        )
    class_name = type(method).__name__
    if class_name not in _BASELINE_CLASSES:
        raise ArtifactError(
            f"unknown baseline class {class_name}; artifacts only cover the "
            f"built-in methods {sorted(_BASELINE_CLASSES)}"
        )
    columns = getattr(method, "feature_columns_", None)
    config = {
        "class": class_name,
        "backbone": method.backbone,
        "hidden_dim": int(method.hidden_dim),
        "num_layers": int(method.num_layers),
        "epochs": int(method.epochs),
        "lr": float(method.lr),
        "patience": None if method.patience is None else int(method.patience),
        "minibatch": bool(getattr(method, "minibatch", False)),
        "fanouts": getattr(method, "fanouts", None),
        "batch_size": int(getattr(method, "batch_size", 512)),
        "cache_epochs": int(getattr(method, "cache_epochs", 1)),
        "in_dim": int(
            graph.num_features if columns is None else np.asarray(columns).size
        ),
    }
    np.savez_compressed(path / _MODEL, **pack_state(model, "model/"))
    arrays = {}
    if columns is not None:
        arrays["feature_columns"] = np.asarray(columns, dtype=np.int64)
    np.savez_compressed(path / _ARRAYS, **arrays)
    return {
        "kind": "baseline",
        "method": method.name,
        "config": config,
        "index": {"kind": "none"},
    }


# --------------------------------------------------------------------- #
# Load
# --------------------------------------------------------------------- #
def load_artifact(path: str | Path) -> "ModelArtifact":
    """Load and validate an artifact directory; reconstruct in eval mode.

    Raises :class:`ArtifactError` with a specific message when the
    directory is not an artifact, the manifest is corrupt, the schema
    version differs from :data:`ARTIFACT_VERSION`, or listed member files
    are missing.
    """
    path = Path(path)
    manifest_path = path / _MANIFEST
    if not manifest_path.is_file():
        raise ArtifactError(
            f"{path} is not a model artifact (no {_MANIFEST}); expected a "
            f"directory written by save_artifact()"
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"corrupt manifest in {path}: {exc}") from exc
    version = manifest.get("format_version")
    if version != ARTIFACT_VERSION:
        raise ArtifactError(
            f"unsupported artifact version {version!r} (this library reads "
            f"version {ARTIFACT_VERSION}); re-save the artifact with a "
            f"matching library version"
        )
    for member in manifest.get("files", []):
        if not (path / member).is_file():
            raise ArtifactError(
                f"artifact {path} is missing member file {member!r} listed "
                f"in its manifest"
            )
    kind = manifest.get("kind")
    if kind not in ("fairwos", "baseline"):
        raise ArtifactError(
            f"unknown artifact kind {kind!r}; expected 'fairwos' or 'baseline'"
        )
    return ModelArtifact(path, manifest)


def _load_npz(path: Path, name: str) -> dict[str, np.ndarray]:
    member = path / name
    if not member.is_file():
        raise ArtifactError(f"artifact {path} is missing {name}")
    try:
        with np.load(member, allow_pickle=False) as data:
            return {key: data[key] for key in data.files}
    except (ValueError, OSError) as exc:
        raise ArtifactError(f"corrupt artifact member {member}: {exc}") from exc


class _FrozenForestBackend:
    """Counterfactual-search backend over a persisted RP forest.

    ``prepare`` is a no-op — the index is frozen at its saved state, which
    is exactly what serving wants: retrieval reflects the representations
    the model was trained (and audited) with.  ``probes`` overrides the
    saved default per query pass (``"exhaustive"`` routes through the
    shared brute-force oracle, bit-identical to the live index under the
    same override).
    """

    name = "frozen-ann"

    def __init__(self, index: RPForestIndex, probes=None) -> None:
        self._index = index
        self._probes = probes

    def prepare(self, points: np.ndarray) -> None:  # noqa: ARG002
        return None

    def topk(self, query_ids, candidate_ids, k):
        mask = np.zeros(self._index.num_points, dtype=bool)
        mask[candidate_ids] = True
        return self._index.query(
            self._index.points[query_ids], k, mask=mask, probes=self._probes
        )


class _FrozenExactBackend:
    """Frozen brute-force backend over persisted representations."""

    name = "frozen-exact"

    def __init__(self, points: np.ndarray) -> None:
        self._points = np.asarray(points, dtype=np.float64)

    def prepare(self, points: np.ndarray) -> None:  # noqa: ARG002
        return None

    def topk(self, query_ids, candidate_ids, k):
        return exact_topk(
            self._points, self._points[query_ids], candidate_ids, k
        )


class ModelArtifact:
    """A loaded artifact: a trained method ready to score.

    Construct via :func:`load_artifact`.  Exposes

    * :meth:`score` — batch logits over the bundled graph, a node subset,
      or a brand-new feature matrix (bit-identical to the in-memory
      trainer's predictions at the same weights);
    * :meth:`counterfactuals` — per-user retrieval from the persisted
      index, no rebuild;
    * :meth:`audit` / :meth:`audit_windows` — fairness reports for drift
      monitoring;
    * :meth:`matches` — fingerprint check of a candidate graph against
      the training dataset.
    """

    def __init__(self, path: Path, manifest: dict) -> None:
        self.path = Path(path)
        self.manifest = manifest
        self.kind: str = manifest["kind"]
        self.method_name: str = manifest.get("method", self.kind)
        self._graph: Graph | None = None
        self._index_backend = None
        self._cf_state: tuple | None = None
        # The resolved execution settings the run trained under, when the
        # saver recorded them (repro run --save does); None for artifacts
        # written before the execution manifest or saved without one.
        self.execution: dict | None = manifest.get("execution")
        if self.kind == "fairwos":
            self._load_fairwos()
        else:
            self._load_baseline()

    # -- reconstruction ------------------------------------------------ #
    def _load_fairwos(self) -> None:
        raw = dict(self.manifest["config"])
        if raw.get("fanouts") is not None:
            raw["fanouts"] = tuple(raw["fanouts"])
        try:
            self.config = FairwosConfig(**raw)
        except TypeError as exc:
            raise ArtifactError(
                f"manifest config does not match FairwosConfig ({exc}); the "
                f"artifact was written by an incompatible library version"
            ) from exc
        arrays = _load_npz(self.path, _ARRAYS)
        model_arrays = _load_npz(self.path, _MODEL)
        pseudo = arrays["pseudo"]
        rng = np.random.default_rng(0)  # weights are overwritten below
        trainer = FairwosTrainer(self.config)
        trainer.classifier = make_backbone(
            self.config.backbone,
            pseudo.shape[1],
            self.config.hidden_dim,
            rng,
            num_layers=self.config.num_layers,
            dropout=self.config.dropout,
        )
        try:
            trainer.classifier.load_state_dict(
                unpack_state(model_arrays, "classifier/")
            )
        except (KeyError, ValueError) as exc:
            raise ArtifactError(
                f"classifier weights do not fit the manifest architecture: {exc}"
            ) from exc
        trainer.classifier.eval()
        if self.manifest.get("has_encoder"):
            in_dim = int(self.manifest["dataset"]["num_features"])
            encoder = EncoderModule(
                in_dim,
                self.config.encoder_dim,
                rng,
                backbone=self.config.encoder_backbone,
            )
            try:
                encoder.network.load_state_dict(
                    unpack_state(model_arrays, "encoder/")
                )
            except (KeyError, ValueError) as exc:
                raise ArtifactError(
                    f"encoder weights do not fit the manifest architecture: "
                    f"{exc}"
                ) from exc
            encoder.network.eval()
            encoder.pretrained = True
            trainer.encoder = encoder
        trainer._pseudo_features = Tensor(pseudo)
        trainer._binary_attrs = arrays["binary_attrs"]
        trainer._pseudo_labels = arrays["pseudo_labels"]
        trainer._pseudo_stats = {
            "mean": arrays["pseudo_mean"],
            "std": arrays["pseudo_std"],
            "keep": arrays.get("pseudo_keep"),
        }
        self.trainer = trainer
        self.baseline = None

        index_arrays = _load_npz(self.path, _INDEX)
        index_kind = self.manifest.get("index", {}).get("kind")
        if index_kind == "ann":
            try:
                self._index = RPForestIndex.from_arrays(index_arrays)
            except (KeyError, ValueError) as exc:
                raise ArtifactError(
                    f"corrupt persisted index in {self.path}: {exc}"
                ) from exc
            self._index_points = self._index.points
        elif index_kind == "exact":
            self._index = None
            self._index_points = np.asarray(
                index_arrays["points"], dtype=np.float64
            )
        else:
            raise ArtifactError(
                f"unknown index kind {index_kind!r} in manifest"
            )

    def _load_baseline(self) -> None:
        config = dict(self.manifest["config"])
        class_name = config.get("class")
        cls = _BASELINE_CLASSES.get(class_name)
        if cls is None:
            raise ArtifactError(
                f"unknown baseline class {class_name!r} in manifest"
            )
        kwargs = dict(
            backbone=config["backbone"],
            hidden_dim=int(config["hidden_dim"]),
            num_layers=int(config["num_layers"]),
            epochs=int(config["epochs"]),
            lr=float(config["lr"]),
            patience=config["patience"],
        )
        method = cls(
            minibatch=bool(config.get("minibatch", False)),
            fanouts=(
                tuple(config["fanouts"]) if config.get("fanouts") else None
            ),
            batch_size=int(config.get("batch_size", 512)),
            cache_epochs=int(config.get("cache_epochs", 1)),
            **kwargs,
        )
        model = make_backbone(
            config["backbone"],
            int(config["in_dim"]),
            int(config["hidden_dim"]),
            np.random.default_rng(0),
            num_layers=int(config["num_layers"]),
        )
        model_arrays = _load_npz(self.path, _MODEL)
        try:
            model.load_state_dict(unpack_state(model_arrays, "model/"))
        except (KeyError, ValueError) as exc:
            raise ArtifactError(
                f"model weights do not fit the manifest architecture: {exc}"
            ) from exc
        model.eval()
        method.model_ = model
        arrays = _load_npz(self.path, _ARRAYS)
        if "feature_columns" in arrays:
            method.feature_columns_ = arrays["feature_columns"]
        self.baseline = method
        self.trainer = None
        self.config = config
        self._index = None
        self._index_points = None

    # -- graph access -------------------------------------------------- #
    @property
    def graph(self) -> Graph | None:
        """The bundled training graph, or None when saved without one."""
        if self._graph is None and (self.path / _GRAPH).is_file():
            self._graph = load_graph(self.path / _GRAPH)
        return self._graph

    def matches(self, graph: Graph) -> bool:
        """Whether ``graph`` fingerprints equal the training dataset's."""
        saved = self.manifest["dataset"]["fingerprints"]
        return graph_fingerprints(graph) == saved

    def _resolve_graph(self, graph: Graph | None) -> Graph:
        graph = graph or self.graph
        if graph is None:
            raise ArtifactError(
                "this artifact was saved without its graph "
                "(include_graph=False); pass one explicitly"
            )
        return graph

    # -- scoring ------------------------------------------------------- #
    def score(
        self,
        graph: Graph | None = None,
        nodes: np.ndarray | None = None,
        features: np.ndarray | None = None,
        batch_size: int | None = None,
    ) -> np.ndarray:
        """Logits from the persisted model — no retraining.

        Parameters
        ----------
        graph:
            Graph to score (default: the bundled training graph).
        nodes:
            Optional node-id subset; returns logits aligned with it.
        features:
            Optional replacement feature matrix (``(N, F_raw)`` in the raw
            input space); it is pushed through the fitted preprocessing
            (encoder, standardization, column selection) before scoring.
            Requires ``graph`` (or the bundle) for the adjacency.
        batch_size:
            Batched-inference batch size override (minibatch configs).

        Scoring the training graph with no overrides reproduces the
        in-memory trainer's predictions bit-identically.
        """
        graph = self._resolve_graph(graph)
        if self.kind == "fairwos":
            return self._score_fairwos(graph, nodes, features, batch_size)
        return self._score_baseline(graph, nodes, features, batch_size)

    def _score_fairwos(self, graph, nodes, features, batch_size):
        trainer = self.trainer
        if features is not None:
            pseudo = Tensor(
                trainer.transform_features(features, graph.adjacency)
            )
        else:
            pseudo = trainer._pseudo_features
            if graph.num_nodes != pseudo.data.shape[0]:
                raise ArtifactError(
                    f"graph has {graph.num_nodes} nodes but the artifact was "
                    f"trained on {pseudo.data.shape[0]}; pass features= to "
                    f"score new data"
                )
        config = trainer.config
        if config.minibatch:
            logits = predict_logits_batched(
                trainer.classifier,
                pseudo.data,
                graph.adjacency,
                nodes=nodes,
                batch_size=batch_size or config.batch_size,
            )
            return logits
        logits = predict_logits(trainer.classifier, pseudo, graph.adjacency)
        return logits if nodes is None else logits[np.asarray(nodes)]

    def _score_baseline(self, graph, nodes, features, batch_size):
        method = self.baseline
        raw = graph.features if features is None else np.asarray(features)
        if method.feature_columns_ is not None:
            raw = raw[:, method.feature_columns_]
        expected = int(self.manifest["config"]["in_dim"])
        if raw.shape[1] != expected:
            raise ArtifactError(
                f"feature matrix has {raw.shape[1]} columns but the model "
                f"expects {expected}"
            )
        if getattr(method, "minibatch", False):
            return predict_logits_batched(
                method.model_,
                raw,
                graph.adjacency,
                nodes=nodes,
                batch_size=batch_size or method.batch_size,
            )
        logits = predict_logits(method.model_, Tensor(raw), graph.adjacency)
        return logits if nodes is None else logits[np.asarray(nodes)]

    # -- counterfactual retrieval -------------------------------------- #
    def counterfactuals(
        self,
        nodes: np.ndarray | None = None,
        top_k: int | None = None,
        probes=None,
    ) -> CounterfactualIndex:
        """Retrieve counterfactual twins from the persisted index.

        Queries the standing index exactly as the trainer's last refresh
        left it — tree arrays, routing tables and update counter included —
        so no rebuild happens at serving time.  Retrieval covers the
        *indexed* (training-graph) nodes; pass ``nodes`` to restrict the
        query set to a served batch, ``probes`` (int or ``"exhaustive"``)
        to trade recall for work per query.

        Only Fairwos artifacts carry an index; baselines raise.
        """
        if self.kind != "fairwos":
            raise ArtifactError(
                f"{self.method_name} artifacts carry no counterfactual "
                f"index; only Fairwos does"
            )
        if probes == EXHAUSTIVE or self._index is None:
            if probes not in (None, EXHAUSTIVE):
                raise ArtifactError(
                    "probes overrides only apply to ANN-indexed artifacts"
                )
            backend = (
                _FrozenForestBackend(self._index, probes=EXHAUSTIVE)
                if self._index is not None
                else _FrozenExactBackend(self._index_points)
            )
        else:
            backend = _FrozenForestBackend(self._index, probes=probes)
        trainer = self.trainer
        search = CounterfactualSearch(
            top_k or trainer.config.top_k, backend=backend
        )
        return search.search(
            self._index_points,
            trainer._pseudo_labels,
            trainer._binary_attrs,
            nodes=nodes,
        )

    # -- auditing ------------------------------------------------------ #
    def audit(self, graph: Graph | None = None, logits: np.ndarray | None = None):
        """Model-side fairness audit of current scores (test split)."""
        from repro.fairness.audit import audit_predictions

        graph = self._resolve_graph(graph)
        if logits is None:
            logits = self.score(graph)
        return audit_predictions(logits, graph)

    def audit_windows(
        self,
        num_windows: int = 4,
        graph: Graph | None = None,
        logits: np.ndarray | None = None,
        nodes: np.ndarray | None = None,
    ):
        """Per-window fairness audit for drift monitoring.

        Splits the scored node stream into ``num_windows`` contiguous
        windows (node-id order unless ``nodes`` gives an explicit arrival
        order) and evaluates fairness per window — the serving-side signal
        that scoring drifted away from the shipped audit.
        """
        from repro.fairness.audit import audit_prediction_windows

        graph = self._resolve_graph(graph)
        if nodes is None:
            nodes = np.arange(graph.num_nodes, dtype=np.int64)
        else:
            nodes = np.asarray(nodes, dtype=np.int64)
        if logits is None:
            logits = self.score(graph, nodes=nodes)
        return audit_prediction_windows(
            logits,
            graph.labels[nodes],
            graph.sensitive[nodes],
            num_windows=num_windows,
        )
