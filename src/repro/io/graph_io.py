"""Graph ``.npz`` round-trip."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.graph import Graph

__all__ = ["save_graph", "load_graph"]

_FORMAT_VERSION = 1


def save_graph(graph: Graph, path: str | Path) -> Path:
    """Serialise ``graph`` to a compressed ``.npz`` file.

    The adjacency is stored as its CSR components; ``meta`` is not persisted
    (it may hold arbitrary objects) except for the scalar provenance fields,
    which are re-created as strings.
    """
    path = Path(path)
    adjacency = graph.adjacency.tocsr()
    np.savez_compressed(
        path,
        format_version=np.array(_FORMAT_VERSION),
        name=np.array(graph.name),
        adj_data=adjacency.data,
        adj_indices=adjacency.indices,
        adj_indptr=adjacency.indptr,
        adj_shape=np.array(adjacency.shape),
        features=graph.features,
        labels=graph.labels,
        sensitive=graph.sensitive,
        train_mask=graph.train_mask,
        val_mask=graph.val_mask,
        test_mask=graph.test_mask,
        related=graph.related_feature_indices,
    )
    # np.savez appends .npz when missing; normalise the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_graph(path: str | Path) -> Graph:
    """Load a graph saved with :func:`save_graph`."""
    with np.load(Path(path), allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported graph file version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        adjacency = sp.csr_matrix(
            (data["adj_data"], data["adj_indices"], data["adj_indptr"]),
            shape=tuple(data["adj_shape"]),
        )
        return Graph(
            adjacency=adjacency,
            features=data["features"],
            labels=data["labels"],
            sensitive=data["sensitive"],
            train_mask=data["train_mask"],
            val_mask=data["val_mask"],
            test_mask=data["test_mask"],
            related_feature_indices=data["related"],
            name=str(data["name"]),
        )
