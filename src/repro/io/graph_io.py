"""Graph persistence: compressed ``.npz`` archives and mmap-able directories.

Two on-disk layouts share one logical format:

* :func:`save_graph` — a single compressed ``.npz`` archive.  Smallest on
  disk, but ``np.load`` must decompress every array into RAM, so it cannot
  back a graph bigger than memory.
* :func:`save_graph_mmap` — a directory of *uncompressed* ``.npy`` files,
  one per array.  ``load_graph(path, mmap=True)`` then opens the large
  arrays (CSR adjacency components and the feature matrix) with
  ``np.load(..., mmap_mode="r")``: the OS pages rows in on demand and the
  resident footprint of a 1M-node graph stays bounded by what training
  actually touches, not by the dataset size.

:func:`load_graph` accepts either layout (dispatching on whether ``path``
is a directory), so callers never hard-code the storage choice.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.graph import Graph

__all__ = ["save_graph", "save_graph_mmap", "load_graph"]

_FORMAT_VERSION = 1

# Arrays worth memory-mapping: everything whose size scales with nodes/edges
# times a non-trivial row width.  The per-node 1-D vectors (labels, masks)
# are a few MB even at 1M nodes and load eagerly either way.
_MMAP_KEYS = ("adj_data", "adj_indices", "adj_indptr", "features")


def save_graph(graph: Graph, path: str | Path) -> Path:
    """Serialise ``graph`` to a compressed ``.npz`` file.

    The adjacency is stored as its CSR components; ``meta`` is not persisted
    (it may hold arbitrary objects) except for the scalar provenance fields,
    which are re-created as strings.
    """
    path = Path(path)
    adjacency = graph.adjacency.tocsr()
    np.savez_compressed(
        path,
        format_version=np.array(_FORMAT_VERSION),
        name=np.array(graph.name),
        adj_data=adjacency.data,
        adj_indices=adjacency.indices,
        adj_indptr=adjacency.indptr,
        adj_shape=np.array(adjacency.shape),
        features=graph.features,
        labels=graph.labels,
        sensitive=graph.sensitive,
        train_mask=graph.train_mask,
        val_mask=graph.val_mask,
        test_mask=graph.test_mask,
        related=graph.related_feature_indices,
    )
    # np.savez appends .npz when missing; normalise the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def _graph_payload(graph: Graph) -> dict[str, np.ndarray]:
    """The logical format shared by both on-disk layouts."""
    adjacency = graph.adjacency.tocsr()
    return {
        "format_version": np.array(_FORMAT_VERSION),
        "name": np.array(graph.name),
        "adj_data": adjacency.data,
        "adj_indices": adjacency.indices,
        "adj_indptr": adjacency.indptr,
        "adj_shape": np.array(adjacency.shape),
        "features": graph.features,
        "labels": graph.labels,
        "sensitive": graph.sensitive,
        "train_mask": graph.train_mask,
        "val_mask": graph.val_mask,
        "test_mask": graph.test_mask,
        "related": graph.related_feature_indices,
    }


def save_graph_mmap(graph: Graph, path: str | Path) -> Path:
    """Serialise ``graph`` as a directory of uncompressed ``.npy`` files.

    The mmap-friendly counterpart of :func:`save_graph`: each array lands
    in its own file with its in-memory dtype preserved (save float32
    features to halve the on-disk and resident footprint), so
    ``load_graph(path, mmap=True)`` can hand the large arrays straight to
    the OS page cache instead of materialising them.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    for key, value in _graph_payload(graph).items():
        # np.save handles layout itself; ascontiguousarray would promote the
        # 0-d scalars (format_version, name) to 1-d and break the round-trip.
        np.save(path / f"{key}.npy", value)
    return path


def _check_version(version: int) -> None:
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported graph file version {version} "
            f"(expected {_FORMAT_VERSION})"
        )


def _build_graph(data) -> Graph:
    adjacency = sp.csr_matrix(
        (data["adj_data"], data["adj_indices"], data["adj_indptr"]),
        shape=tuple(data["adj_shape"]),
    )
    return Graph(
        adjacency=adjacency,
        features=data["features"],
        labels=data["labels"],
        sensitive=data["sensitive"],
        train_mask=data["train_mask"],
        val_mask=data["val_mask"],
        test_mask=data["test_mask"],
        related_feature_indices=data["related"],
        name=str(data["name"]),
    )


def _load_graph_dir(path: Path, mmap: bool) -> Graph:
    """Load a :func:`save_graph_mmap` directory, optionally memory-mapped."""
    def read(key: str) -> np.ndarray:
        file = path / f"{key}.npy"
        if not file.is_file():
            raise ValueError(f"not a saved graph directory: {path} (missing {key}.npy)")
        mode = "r" if mmap and key in _MMAP_KEYS else None
        return np.load(file, allow_pickle=False, mmap_mode=mode)

    _check_version(int(read("format_version")))
    keys = (
        "adj_data", "adj_indices", "adj_indptr", "adj_shape", "features",
        "labels", "sensitive", "train_mask", "val_mask", "test_mask",
        "related", "name",
    )
    return _build_graph({key: read(key) for key in keys})


def load_graph(path: str | Path, mmap: bool = False) -> Graph:
    """Load a graph saved with :func:`save_graph` or :func:`save_graph_mmap`.

    Parameters
    ----------
    path:
        Either a ``.npz`` archive or a ``save_graph_mmap`` directory; the
        layout is detected from the filesystem.
    mmap:
        Open the adjacency CSR components and the feature matrix with
        ``mmap_mode="r"`` instead of reading them into RAM.  Only the
        directory layout supports this — compressed ``.npz`` members are
        not mappable, so asking for ``mmap`` on an archive raises rather
        than silently loading eagerly.
    """
    path = Path(path)
    if path.is_dir():
        return _load_graph_dir(path, mmap)
    if mmap:
        raise ValueError(
            "mmap loading needs the uncompressed directory layout; save the "
            "graph with save_graph_mmap() (compressed .npz members cannot "
            "be memory-mapped)"
        )
    with np.load(path, allow_pickle=False) as data:
        _check_version(int(data["format_version"]))
        return _build_graph(data)
