"""networkx interoperability."""

from __future__ import annotations

import networkx as nx
import numpy as np
import scipy.sparse as sp

from repro.graph import Graph

__all__ = ["to_networkx", "from_networkx"]


def to_networkx(graph: Graph, include_attributes: bool = True) -> nx.Graph:
    """Convert to an undirected :class:`networkx.Graph`.

    Node attributes (when ``include_attributes``): ``label``, ``sensitive``,
    ``split`` ("train" / "val" / "test") and the raw ``features`` vector.
    """
    nx_graph = nx.from_scipy_sparse_array(graph.adjacency)
    if include_attributes:
        splits = np.full(graph.num_nodes, "test", dtype=object)
        splits[graph.train_mask] = "train"
        splits[graph.val_mask] = "val"
        for node in range(graph.num_nodes):
            nx_graph.nodes[node].update(
                label=int(graph.labels[node]),
                sensitive=int(graph.sensitive[node]),
                split=str(splits[node]),
                features=graph.features[node].copy(),
            )
    nx_graph.graph["name"] = graph.name
    return nx_graph


def from_networkx(
    nx_graph: nx.Graph,
    features: np.ndarray | None = None,
    labels: np.ndarray | None = None,
    sensitive: np.ndarray | None = None,
    train_mask: np.ndarray | None = None,
    val_mask: np.ndarray | None = None,
    test_mask: np.ndarray | None = None,
    name: str | None = None,
) -> Graph:
    """Build a :class:`~repro.graph.Graph` from a networkx graph.

    Arrays default to the corresponding per-node attributes when present on
    the networkx graph (the inverse of :func:`to_networkx`); explicit
    arguments override.  Nodes are re-labelled to ``0..N-1`` in sorted order.
    """
    nodes = sorted(nx_graph.nodes())
    relabeled = nx.relabel_nodes(
        nx_graph, {node: i for i, node in enumerate(nodes)}, copy=True
    )
    adjacency = sp.csr_matrix(
        nx.to_scipy_sparse_array(relabeled, nodelist=range(len(nodes)))
    )
    adjacency.data = np.ones_like(adjacency.data)

    def _from_attr(key, override, dtype):
        if override is not None:
            return np.asarray(override)
        values = [relabeled.nodes[i].get(key) for i in range(len(nodes))]
        if any(v is None for v in values):
            raise ValueError(
                f"node attribute {key!r} missing and no explicit array given"
            )
        return np.asarray(values, dtype=dtype)

    features_arr = (
        np.asarray(features)
        if features is not None
        else np.stack(_from_attr("features", None, object).tolist())
    )
    labels_arr = _from_attr("label", labels, np.int64)
    sensitive_arr = _from_attr("sensitive", sensitive, np.int64)
    if train_mask is None or val_mask is None or test_mask is None:
        splits = _from_attr("split", None, object)
        train_mask = splits == "train"
        val_mask = splits == "val"
        test_mask = splits == "test"
    return Graph(
        adjacency=adjacency,
        features=features_arr,
        labels=labels_arr,
        sensitive=sensitive_arr,
        train_mask=np.asarray(train_mask, dtype=bool),
        val_mask=np.asarray(val_mask, dtype=bool),
        test_mask=np.asarray(test_mask, dtype=bool),
        name=name or nx_graph.graph.get("name", "graph"),
    )
