"""Model checkpointing via ``state_dict`` ``.npz`` files.

:func:`save_state` / :func:`load_state` are the single-model round-trip;
:func:`pack_state` / :func:`unpack_state` expose the underlying key mapping
(``.`` ↔ ``/``, with an optional namespace prefix) so callers bundling
several models into one archive — the artifact format of
:mod:`repro.io.artifact` stores encoder and classifier side by side — share
the exact same naming scheme instead of re-inventing it.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.nn.module import Module

__all__ = ["save_state", "load_state", "pack_state", "unpack_state"]


def pack_state(model: Module, prefix: str = "") -> dict:
    """Flatten ``model.state_dict()`` into npz-safe keys.

    Parameter names become archive keys; ``/`` replaces ``.`` because npz
    keys may not contain dots.  ``prefix`` namespaces the keys (e.g.
    ``"encoder/"``) so several models can share one archive.
    """
    return {
        prefix + name.replace(".", "/"): value
        for name, value in model.state_dict().items()
    }


def unpack_state(arrays, prefix: str = "") -> dict:
    """Invert :func:`pack_state` over a mapping of npz keys to arrays.

    Only keys under ``prefix`` are considered; the returned dict feeds
    ``Module.load_state_dict`` (which is strict — missing, unexpected or
    mis-shaped parameters raise).
    """
    keys = arrays.files if hasattr(arrays, "files") else arrays.keys()
    return {
        key[len(prefix):].replace("/", "."): arrays[key]
        for key in keys
        if key.startswith(prefix)
    }


def save_state(model: Module, path: str | Path) -> Path:
    """Write ``model.state_dict()`` to a compressed ``.npz`` file."""
    path = Path(path)
    np.savez_compressed(path, **pack_state(model))
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_state(model: Module, path: str | Path) -> Module:
    """Load a checkpoint written by :func:`save_state` into ``model``.

    The model must already have the matching architecture — loading is
    strict (missing/unexpected/mis-shaped parameters raise).
    """
    with np.load(Path(path), allow_pickle=False) as data:
        state = unpack_state(data)
    model.load_state_dict(state)
    return model
