"""Model checkpointing via ``state_dict`` ``.npz`` files."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.nn.module import Module

__all__ = ["save_state", "load_state"]


def save_state(model: Module, path: str | Path) -> Path:
    """Write ``model.state_dict()`` to a compressed ``.npz`` file.

    Parameter names become archive keys; ``/`` replaces ``.`` because npz
    keys may not be arbitrary (kept reversible by :func:`load_state`).
    """
    path = Path(path)
    state = {name.replace(".", "/"): value for name, value in model.state_dict().items()}
    np.savez_compressed(path, **state)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_state(model: Module, path: str | Path) -> Module:
    """Load a checkpoint written by :func:`save_state` into ``model``.

    The model must already have the matching architecture — loading is
    strict (missing/unexpected/mis-shaped parameters raise).
    """
    with np.load(Path(path), allow_pickle=False) as data:
        state = {key.replace("/", "."): data[key] for key in data.files}
    model.load_state_dict(state)
    return model
