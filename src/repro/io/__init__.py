"""Persistence and interoperability.

* :func:`save_graph` / :func:`load_graph` — single-file ``.npz`` round-trip
  of a :class:`~repro.graph.Graph` (adjacency stored in CSR parts);
  :func:`save_graph_mmap` writes the same format as an uncompressed
  directory that ``load_graph(path, mmap=True)`` memory-maps, keeping
  1M-node adjacency/feature arrays on disk instead of in RAM;
* :func:`save_state` / :func:`load_state` — model checkpointing via the
  ``Module.state_dict`` mapping (:func:`pack_state` / :func:`unpack_state`
  expose the key scheme for multi-model archives);
* :func:`save_artifact` / :func:`load_artifact` — versioned whole-method
  bundles (weights + config + preprocessing state + the standing
  counterfactual index) powering the ``repro score`` / ``repro serve``
  path; see :mod:`repro.io.artifact`;
* :func:`to_networkx` / :func:`from_networkx` — bridge to the networkx
  ecosystem for visualisation and classic graph algorithms.
"""

from repro.io.artifact import (
    ArtifactError,
    ModelArtifact,
    load_artifact,
    save_artifact,
)
from repro.io.graph_io import load_graph, save_graph, save_graph_mmap
from repro.io.model_io import load_state, pack_state, save_state, unpack_state
from repro.io.nx_bridge import from_networkx, to_networkx

__all__ = [
    "save_graph",
    "save_graph_mmap",
    "load_graph",
    "save_state",
    "load_state",
    "pack_state",
    "unpack_state",
    "save_artifact",
    "load_artifact",
    "ModelArtifact",
    "ArtifactError",
    "to_networkx",
    "from_networkx",
]
