"""Optimizer base class and gradient utilities."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.module import Parameter
from repro.tensor.backend import get_backend

__all__ = ["Optimizer", "clip_grad_norm"]


class Optimizer:
    """Base class: holds a parameter list and implements ``zero_grad``."""

    def __init__(self, parameters: Sequence[Parameter]) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update; implemented by subclasses."""
        raise NotImplementedError


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging divergence).
    """
    xp = get_backend().xp
    total = 0.0
    for param in parameters:
        if param.grad is not None:
            total += float(xp.sum(param.grad**2))
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for param in parameters:
            if param.grad is not None:
                param.grad = param.grad * scale
    return norm
