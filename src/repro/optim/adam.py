"""Adam optimiser (Kingma & Ba, 2015) with decoupled-style weight decay option.

The paper optimises all models with Adam ("ADM optimizer", lr 0.001), so this
is the default optimiser across the reproduction.

The update itself is a single fused, in-place kernel on the backend seam
(:meth:`repro.tensor.backend.ArrayBackend.adam_step`): the composed
``p - lr * m̂ / (sqrt(v̂) + eps)`` expression allocated five full-size
temporaries per parameter per step and rebound ``param.data``; the fused
form mutates the parameter and reuses two scratch buffers, bit-identical to
the composed arithmetic (pinned by the golden baseline fixtures, which run
entire trainings through it).
"""

from __future__ import annotations

from typing import Sequence

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer
from repro.tensor.backend import get_backend

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adam with bias-corrected first/second moment estimates."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not (0 <= betas[0] < 1 and 0 <= betas[1] < 1):
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        xp = get_backend().xp
        self._m = [xp.zeros_like(p.data) for p in self.parameters]
        self._v = [xp.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        backend = get_backend()
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            backend.adam_step(
                param.data,
                param.grad,
                m,
                v,
                lr=self.lr,
                beta1=self.beta1,
                beta2=self.beta2,
                eps=self.eps,
                bias1=bias1,
                bias2=bias2,
                weight_decay=self.weight_decay,
            )
