"""Adam optimiser (Kingma & Ba, 2015) with decoupled-style weight decay option.

The paper optimises all models with Adam ("ADM optimizer", lr 0.001), so this
is the default optimiser across the reproduction.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adam with bias-corrected first/second moment estimates."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not (0 <= betas[0] < 1 and 0 <= betas[1] < 1):
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
