"""First-order optimisers (SGD with momentum, Adam) and gradient clipping."""

from repro.optim.optimizer import Optimizer, clip_grad_norm
from repro.optim.sgd import SGD
from repro.optim.adam import Adam

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]
