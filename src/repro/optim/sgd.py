"""Stochastic gradient descent with optional momentum and weight decay."""

from __future__ import annotations

from typing import Sequence

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer
from repro.tensor.backend import get_backend

__all__ = ["SGD"]


class SGD(Optimizer):
    """Vanilla / momentum SGD.

    Update rule (per parameter ``p`` with gradient ``g``):

    .. code-block:: text

        g ← g + weight_decay * p
        v ← momentum * v + g
        p ← p - lr * v
    """

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [get_backend().xp.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data = param.data - self.lr * grad
