"""A small reverse-mode automatic differentiation engine on top of numpy.

This package is the compute substrate for the whole reproduction: the paper's
experiments were run on PyTorch/PyG, which is unavailable here, so we provide
a from-scratch equivalent.  It supports exactly what graph neural networks
need:

* dense broadcasting arithmetic with correct gradient "unbroadcasting",
* ``matmul`` and sparse-dense ``spmm`` (scipy CSR adjacency @ dense features),
* stable ``sigmoid`` / ``log_softmax`` / ``logsumexp``,
* row ``gather`` / ``scatter_add`` for counterfactual indexing and
  attention-style aggregation,
* reductions, elementwise non-linearities, reshaping,
* a finite-difference :func:`gradcheck` used by the test-suite.

The public entry point is :class:`Tensor`; free functions mirror the method
API for a functional style.
"""

from repro.tensor.backend import (
    BackendUnavailableError,
    available_backends,
    backend_scope,
    get_backend,
    register_backend,
    resolve_backend,
    set_backend,
)
from repro.tensor.dtype import (
    dtype_scope,
    get_default_dtype,
    resolve_dtype,
    set_default_dtype,
)
from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor.ops import (
    add,
    concat,
    exp,
    gather,
    leaky_relu,
    log,
    log_softmax,
    logsumexp,
    matmul,
    maximum,
    mean,
    mul,
    relu,
    scatter_add,
    sigmoid,
    softmax,
    spmm,
    sqrt,
    sum as tsum,
    tanh,
    where,
)
from repro.tensor.gradcheck import gradcheck, numerical_gradient

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "BackendUnavailableError",
    "available_backends",
    "backend_scope",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "set_backend",
    "dtype_scope",
    "get_default_dtype",
    "resolve_dtype",
    "set_default_dtype",
    "add",
    "concat",
    "exp",
    "gather",
    "leaky_relu",
    "log",
    "log_softmax",
    "logsumexp",
    "matmul",
    "maximum",
    "mean",
    "mul",
    "relu",
    "scatter_add",
    "sigmoid",
    "softmax",
    "spmm",
    "sqrt",
    "tsum",
    "tanh",
    "where",
    "gradcheck",
    "numerical_gradient",
]
