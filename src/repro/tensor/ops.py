"""Differentiable operations for :class:`repro.tensor.Tensor`.

Every function takes tensors (or array-likes, which are promoted to constant
tensors), computes the forward value against the *active backend*'s array
namespace (:func:`repro.tensor.backend.get_backend` — numpy by default, in
which case ``xp`` below is literally the ``numpy`` module and every call is
bit-identical to the historical direct-numpy engine), and registers a closure
that maps the output gradient to per-parent gradients.  Broadcasting ops
reduce gradients back to parent shapes with
:func:`repro.tensor.tensor.unbroadcast`.

Index bookkeeping (axis permutations, concat offsets, integer index arrays)
stays host-side numpy on every backend; only the floating-point math routes
through the seam.

The sparse-dense product :func:`spmm` accepts a *constant* ``scipy.sparse``
matrix on the left (graph adjacency matrices never require gradients in this
codebase) and a dense tensor on the right; its adjoint is ``A.T @ grad``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.tensor.backend import _SCATTER_SPMM_THRESHOLD, get_backend
from repro.tensor.dtype import get_default_dtype
from repro.tensor.tensor import Tensor, as_tensor, unbroadcast

__all__ = [
    "add",
    "sub",
    "neg",
    "mul",
    "div",
    "power",
    "matmul",
    "spmm",
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "exp",
    "log",
    "sqrt",
    "absolute",
    "maximum",
    "where",
    "squared_distance",
    "sum",
    "mean",
    "reshape",
    "expand_dims",
    "transpose",
    "index",
    "gather",
    "scatter_add",
    "concat",
    "softmax",
    "log_softmax",
    "logsumexp",
    "dropout_mask",
]


# --------------------------------------------------------------------- #
# arithmetic
# --------------------------------------------------------------------- #
def add(a, b) -> Tensor:
    """Elementwise ``a + b`` with numpy broadcasting."""
    a, b = as_tensor(a), as_tensor(b)
    out = a.data + b.data

    def backward(grad):
        return unbroadcast(grad, a.shape), unbroadcast(grad, b.shape)

    return Tensor.from_op(out, (a, b), backward)


def neg(a) -> Tensor:
    """Elementwise negation."""
    a = as_tensor(a)

    def backward(grad):
        return (-grad,)

    return Tensor.from_op(-a.data, (a,), backward)


def sub(a, b) -> Tensor:
    """Elementwise ``a - b`` with broadcasting."""
    a, b = as_tensor(a), as_tensor(b)
    out = a.data - b.data

    def backward(grad):
        return unbroadcast(grad, a.shape), unbroadcast(-grad, b.shape)

    return Tensor.from_op(out, (a, b), backward)


def mul(a, b) -> Tensor:
    """Elementwise product with broadcasting."""
    a, b = as_tensor(a), as_tensor(b)
    out = a.data * b.data

    def backward(grad):
        return (
            unbroadcast(grad * b.data, a.shape),
            unbroadcast(grad * a.data, b.shape),
        )

    return Tensor.from_op(out, (a, b), backward)


def div(a, b) -> Tensor:
    """Elementwise quotient with broadcasting."""
    a, b = as_tensor(a), as_tensor(b)
    out = a.data / b.data

    def backward(grad):
        return (
            unbroadcast(grad / b.data, a.shape),
            unbroadcast(-grad * a.data / (b.data**2), b.shape),
        )

    return Tensor.from_op(out, (a, b), backward)


def power(a, exponent: float) -> Tensor:
    """Elementwise ``a ** exponent`` for a python-scalar exponent."""
    a = as_tensor(a)
    exponent = float(exponent)
    out = a.data**exponent

    def backward(grad):
        return (grad * exponent * a.data ** (exponent - 1.0),)

    return Tensor.from_op(out, (a,), backward)


def matmul(a, b) -> Tensor:
    """Dense matrix product (2-D @ 2-D, or 2-D @ 1-D)."""
    a, b = as_tensor(a), as_tensor(b)
    out = a.data @ b.data

    def backward(grad):
        backend = get_backend()
        if b.data.ndim == 1:
            grad_a = (
                backend.xp.outer(grad, b.data) if a.data.ndim == 2 else grad * b.data
            )
            grad_b = backend.transpose(a.data) @ grad
        else:
            grad_a = grad @ backend.transpose(b.data)
            grad_b = backend.transpose(a.data) @ grad
        return grad_a, grad_b

    return Tensor.from_op(out, (a, b), backward)


def spmm(matrix: sp.spmatrix, dense) -> Tensor:
    """Sparse @ dense product where ``matrix`` is a constant scipy matrix.

    Used for GNN message passing ``Â @ H``.  The adjoint with respect to the
    dense operand is ``Â.T @ grad`` (which equals ``Â @ grad`` for symmetric
    normalised adjacencies, but we do not assume symmetry).
    """
    dense = as_tensor(dense)
    backend = get_backend()
    out, cast_matrix = backend.spmm(matrix, dense.data)

    def backward(grad):
        return (backend.spmm_adjoint(cast_matrix, grad),)

    return Tensor.from_op(out, (dense,), backward)


# --------------------------------------------------------------------- #
# nonlinearities
# --------------------------------------------------------------------- #
def relu(a) -> Tensor:
    """Rectified linear unit ``max(a, 0)``."""
    a = as_tensor(a)
    mask = a.data > 0
    out = a.data * mask

    def backward(grad):
        return (grad * mask,)

    return Tensor.from_op(out, (a,), backward)


def leaky_relu(a, negative_slope: float = 0.2) -> Tensor:
    """Leaky ReLU with the given slope for negative inputs."""
    a = as_tensor(a)
    backend = get_backend()
    mask = a.data > 0
    # Cast the gate to the input dtype: xp.where on python scalars yields
    # float64, which would silently upcast a float32 graph.
    scale = backend.asarray(
        backend.xp.where(mask, 1.0, negative_slope),
        dtype=backend.np_dtype(a.data),
    )
    out = a.data * scale

    def backward(grad):
        return (grad * scale,)

    return Tensor.from_op(out, (a,), backward)


def sigmoid(a) -> Tensor:
    """Numerically stable logistic sigmoid."""
    a = as_tensor(a)
    xp = get_backend().xp
    x = a.data
    out = xp.where(x >= 0, 1.0 / (1.0 + xp.exp(-xp.abs(x))), xp.exp(-xp.abs(x)) / (1.0 + xp.exp(-xp.abs(x))))

    def backward(grad):
        return (grad * out * (1.0 - out),)

    return Tensor.from_op(out, (a,), backward)


def tanh(a) -> Tensor:
    """Hyperbolic tangent."""
    a = as_tensor(a)
    out = get_backend().xp.tanh(a.data)

    def backward(grad):
        return (grad * (1.0 - out**2),)

    return Tensor.from_op(out, (a,), backward)


def exp(a) -> Tensor:
    """Elementwise exponential."""
    a = as_tensor(a)
    out = get_backend().xp.exp(a.data)

    def backward(grad):
        return (grad * out,)

    return Tensor.from_op(out, (a,), backward)


def log(a) -> Tensor:
    """Elementwise natural logarithm."""
    a = as_tensor(a)
    out = get_backend().xp.log(a.data)

    def backward(grad):
        return (grad / a.data,)

    return Tensor.from_op(out, (a,), backward)


def sqrt(a) -> Tensor:
    """Elementwise square root."""
    a = as_tensor(a)
    out = get_backend().xp.sqrt(a.data)

    def backward(grad):
        return (grad * 0.5 / out,)

    return Tensor.from_op(out, (a,), backward)


def absolute(a) -> Tensor:
    """Elementwise absolute value (subgradient 0 at 0)."""
    a = as_tensor(a)
    xp = get_backend().xp
    out = xp.abs(a.data)

    def backward(grad):
        return (grad * xp.sign(a.data),)

    return Tensor.from_op(out, (a,), backward)


def maximum(a, b) -> Tensor:
    """Elementwise maximum; ties send the gradient to the first argument."""
    a, b = as_tensor(a), as_tensor(b)
    take_a = a.data >= b.data
    out = get_backend().xp.where(take_a, a.data, b.data)

    def backward(grad):
        return (
            unbroadcast(grad * take_a, a.shape),
            unbroadcast(grad * ~take_a, b.shape),
        )

    return Tensor.from_op(out, (a, b), backward)


def where(condition, a, b) -> Tensor:
    """Select ``a`` where ``condition`` else ``b``; condition is constant."""
    a, b = as_tensor(a), as_tensor(b)
    xp = get_backend().xp
    condition = xp.asarray(condition, dtype=bool)
    out = xp.where(condition, a.data, b.data)

    def backward(grad):
        return (
            unbroadcast(grad * condition, a.shape),
            unbroadcast(grad * ~condition, b.shape),
        )

    return Tensor.from_op(out, (a, b), backward)


def squared_distance(a, b) -> Tensor:
    """Fused ``((a - b) ** 2).sum(axis=-1)`` with numpy broadcasting.

    Computes the squared L2 distance of batched row pairs in one op,
    avoiding the separate ``sub``/``power``/``sum`` intermediates (and their
    per-op closures) of the elementwise formulation.  (The fair loss itself
    goes further still — a norm expansion through :func:`spmm` that never
    materialises the pair tensor — but this is the general-purpose form.)
    The adjoint is ``±2 (a − b) · grad`` expanded over the reduced axis and
    unbroadcast to each operand's shape.
    """
    a, b = as_tensor(a), as_tensor(b)
    xp = get_backend().xp
    diff = a.data - b.data
    out = xp.sum(diff**2, axis=-1)

    def backward(grad):
        g = 2.0 * xp.expand_dims(xp.asarray(grad), -1) * diff
        return unbroadcast(g, a.shape), unbroadcast(-g, b.shape)

    return Tensor.from_op(out, (a, b), backward)


# --------------------------------------------------------------------- #
# reductions
# --------------------------------------------------------------------- #
def sum(a, axis=None, keepdims: bool = False) -> Tensor:
    """Sum over ``axis`` (all axes when None)."""
    a = as_tensor(a)
    xp = get_backend().xp
    out = xp.sum(a.data, axis=axis, keepdims=keepdims)

    def backward(grad):
        g = xp.asarray(grad)
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            g = xp.expand_dims(g, tuple(ax % a.data.ndim for ax in axes))
        return (get_backend().copy(xp.broadcast_to(g, a.shape)),)

    return Tensor.from_op(out, (a,), backward)


def mean(a, axis=None, keepdims: bool = False) -> Tensor:
    """Arithmetic mean over ``axis`` (all axes when None)."""
    a = as_tensor(a)
    xp = get_backend().xp
    out = xp.mean(a.data, axis=axis, keepdims=keepdims)
    if axis is None:
        count = a.size
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        count = int(np.prod([a.data.shape[ax] for ax in axes]))

    def backward(grad):
        g = xp.asarray(grad) / count
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            g = xp.expand_dims(g, tuple(ax % a.data.ndim for ax in axes))
        return (get_backend().copy(xp.broadcast_to(g, a.shape)),)

    return Tensor.from_op(out, (a,), backward)


# --------------------------------------------------------------------- #
# shape manipulation and indexing
# --------------------------------------------------------------------- #
def reshape(a, shape: tuple[int, ...]) -> Tensor:
    """Reshape; the gradient is reshaped back."""
    a = as_tensor(a)
    out = a.data.reshape(shape)

    def backward(grad):
        return (grad.reshape(a.shape),)

    return Tensor.from_op(out, (a,), backward)


def expand_dims(a, axis) -> Tensor:
    """Insert length-1 axes (``np.expand_dims``); the gradient is squeezed back."""
    a = as_tensor(a)
    out = get_backend().xp.expand_dims(a.data, axis)

    def backward(grad):
        return (grad.reshape(a.shape),)

    return Tensor.from_op(out, (a,), backward)


def transpose(a, axes: tuple[int, ...] | None = None) -> Tensor:
    """Permute axes (reverse when ``axes`` is None)."""
    a = as_tensor(a)
    backend = get_backend()
    out = backend.transpose(a.data, axes)

    def backward(grad):
        if axes is None:
            return (backend.transpose(grad),)
        inverse = np.argsort(axes)
        return (backend.transpose(grad, inverse),)

    return Tensor.from_op(out, (a,), backward)


def index(a, idx) -> Tensor:
    """General numpy indexing with scatter-add adjoint.

    Supports slices, integer arrays and boolean masks — anything accepted by
    ``ndarray.__getitem__`` where ``np.add.at`` is a valid adjoint.
    """
    a = as_tensor(a)
    out = a.data[idx]

    def backward(grad):
        backend = get_backend()
        full = backend.xp.zeros_like(a.data)
        backend.index_add(full, idx, grad)
        return (full,)

    return Tensor.from_op(out, (a,), backward)


def _scatter_rows(indices: np.ndarray, grad, out_shape):
    """Sum gradient rows into their source rows (the adjoint of a row gather).

    ``indices`` has any shape; ``grad`` has shape ``indices.shape + rest``.
    Large scatters use ``Sᵀ @ grad`` with a constant CSR selection matrix
    (see :data:`repro.tensor.backend._SCATTER_SPMM_THRESHOLD`); the routing
    lives on the backend so alternative array libraries can use their native
    ``index_add``.
    """
    return get_backend().scatter_rows(indices, grad, out_shape)


def gather(a, row_indices) -> Tensor:
    """Select rows along axis 0 (``a[row_indices]``); duplicates allowed.

    ``row_indices`` may have any shape: an ``(I, N, K)`` index into an
    ``(N, d)`` matrix returns an ``(I, N, K, d)`` tensor (the batched gather
    the fused fair loss relies on).  The adjoint scatter-adds every selected
    copy back into its source row.
    """
    a = as_tensor(a)
    row_indices = np.asarray(row_indices, dtype=np.int64)
    out = a.data[row_indices]

    def backward(grad):
        return (get_backend().scatter_rows(row_indices, grad, a.shape),)

    return Tensor.from_op(out, (a,), backward)


def scatter_add(a, row_indices, num_rows: int) -> Tensor:
    """Sum rows of ``a`` into ``num_rows`` buckets given by ``row_indices``.

    The adjoint of :func:`gather`: ``out[j] = sum_{i: idx[i]==j} a[i]``.
    Used for edge-to-node aggregation in attention layers.
    """
    a = as_tensor(a)
    backend = get_backend()
    row_indices = np.asarray(row_indices, dtype=np.int64)
    out_shape = (num_rows,) + a.shape[1:]
    out = backend.xp.zeros(out_shape, dtype=a.data.dtype)
    backend.index_add(out, row_indices, a.data)

    def backward(grad):
        return (grad[row_indices],)

    return Tensor.from_op(out, (a,), backward)


def concat(tensors, axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    out = get_backend().xp.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        pieces = []
        slicer: list = [slice(None)] * grad.ndim
        for start, stop in zip(offsets[:-1], offsets[1:]):
            slicer[axis] = slice(start, stop)
            pieces.append(grad[tuple(slicer)])
        return tuple(pieces)

    return Tensor.from_op(out, tuple(tensors), backward)


# --------------------------------------------------------------------- #
# softmax family (numerically stable)
# --------------------------------------------------------------------- #
def logsumexp(a, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Stable ``log(sum(exp(a)))`` along ``axis``."""
    a = as_tensor(a)
    xp = get_backend().xp
    x = a.data
    xmax = xp.max(x, axis=axis, keepdims=True)
    shifted = xp.exp(x - xmax)
    total = xp.sum(shifted, axis=axis, keepdims=True)
    out = xp.log(total) + xmax
    softmax_vals = shifted / total
    if not keepdims:
        out = xp.squeeze(out, axis=axis)

    def backward(grad):
        g = xp.asarray(grad)
        if not keepdims:
            g = xp.expand_dims(g, axis)
        return (g * softmax_vals,)

    return Tensor.from_op(out, (a,), backward)


def softmax(a, axis: int = -1) -> Tensor:
    """Stable softmax along ``axis``."""
    a = as_tensor(a)
    xp = get_backend().xp
    x = a.data
    shifted = xp.exp(x - xp.max(x, axis=axis, keepdims=True))
    out = shifted / xp.sum(shifted, axis=axis, keepdims=True)

    def backward(grad):
        inner = xp.sum(grad * out, axis=axis, keepdims=True)
        return (out * (grad - inner),)

    return Tensor.from_op(out, (a,), backward)


def log_softmax(a, axis: int = -1) -> Tensor:
    """Stable log-softmax along ``axis``."""
    a = as_tensor(a)
    xp = get_backend().xp
    x = a.data
    xmax = xp.max(x, axis=axis, keepdims=True)
    shifted = x - xmax
    lse = xp.log(xp.sum(xp.exp(shifted), axis=axis, keepdims=True))
    out = shifted - lse
    softmax_vals = xp.exp(out)

    def backward(grad):
        return (grad - softmax_vals * xp.sum(grad, axis=axis, keepdims=True),)

    return Tensor.from_op(out, (a,), backward)


def dropout_mask(shape: tuple[int, ...], rate: float, rng: np.random.Generator):
    """Sample an inverted-dropout mask (scaled keep mask) as a constant array.

    The mask is sampled host-side (numpy RNG, so seeded runs reproduce across
    backends) and handed to the active backend.
    """
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    keep = 1.0 - rate
    mask = (rng.random(shape) < keep).astype(get_default_dtype()) / keep
    return get_backend().asarray(mask)
