"""Process-wide default floating dtype for the autodiff engine.

Every :class:`~repro.tensor.tensor.Tensor` coerces its payload to the
*default dtype* registered here.  Historically that was hard-wired to
``float64`` — the right oracle for finite-difference gradient checks, but
twice the memory the 1M-node tier can afford.  The registry makes the
precision a run-time choice:

* ``float64`` (the default) keeps every existing code path bit-identical;
* ``float32`` halves the resident weight/activation footprint, with the
  float64 path kept as the parity oracle in the test-suite.

Only the two IEEE float widths are accepted: integer or half dtypes would
silently break the gradient math, so :func:`resolve_dtype` rejects them.

The intended entry point is :func:`dtype_scope` — trainers wrap model
construction *and* every forward/backward in one scope so parameters,
activations and optimiser state agree::

    with dtype_scope("float32"):
        model = GCN(...)
        trainer.fit(...)

Ops that materialise fresh arrays from non-Tensor inputs (dropout masks,
loss targets) consult :func:`get_default_dtype`; ops transforming existing
tensors derive their dtype from their inputs so mixed scopes degrade
predictably (numpy promotion rules) instead of surprisingly.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

import numpy as np

__all__ = [
    "SUPPORTED_DTYPES",
    "dtype_scope",
    "get_default_dtype",
    "resolve_dtype",
    "set_default_dtype",
]

SUPPORTED_DTYPES = ("float32", "float64")

_DEFAULT_DTYPE = np.dtype(np.float64)


def resolve_dtype(dtype) -> np.dtype:
    """Normalise ``dtype`` to ``np.dtype`` and validate it is a supported float.

    Accepts the strings ``"float32"``/``"float64"``, the numpy scalar types,
    or ``np.dtype`` instances.  Anything else (including integer and float16
    dtypes) raises ``ValueError``.
    """
    try:
        resolved = np.dtype(dtype)
    except TypeError as exc:  # e.g. dtype=3.5
        raise ValueError(f"not a dtype: {dtype!r}") from exc
    if resolved.name not in SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported dtype {resolved.name!r}; expected one of {SUPPORTED_DTYPES}"
        )
    return resolved


def get_default_dtype() -> np.dtype:
    """The dtype new tensors coerce to (``float64`` unless overridden)."""
    return _DEFAULT_DTYPE


def set_default_dtype(dtype) -> np.dtype:
    """Set the process-wide default dtype; returns the previous default.

    Prefer :func:`dtype_scope` — an unbalanced global switch leaks into
    unrelated code (and tests).  This function exists as the primitive the
    scope is built on, and for long-lived worker processes that configure
    precision once at startup.
    """
    global _DEFAULT_DTYPE
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = resolve_dtype(dtype)
    return previous


@contextlib.contextmanager
def dtype_scope(dtype) -> Iterator[np.dtype]:
    """Context manager temporarily switching the default dtype.

    Restores the previous default on exit even when the body raises, so a
    failing float32 fit cannot poison subsequent float64 runs.
    """
    previous = set_default_dtype(dtype)
    try:
        yield _DEFAULT_DTYPE
    finally:
        set_default_dtype(previous)
