"""Finite-difference gradient checking utilities.

Used heavily by the test-suite to certify every op in
:mod:`repro.tensor.ops`: analytic gradients from :meth:`Tensor.backward` are
compared against central differences computed on the same function.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor

__all__ = ["numerical_gradient", "gradcheck"]


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    wrt: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of scalar ``fn(*inputs)`` w.r.t. one input.

    Parameters
    ----------
    fn:
        Function of the tensors in ``inputs`` returning a scalar tensor.
    inputs:
        Input tensors; only ``inputs[wrt]`` is perturbed.
    wrt:
        Index of the input to differentiate with respect to.
    eps:
        Step size for the symmetric difference quotient.
    """
    target = inputs[wrt]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data)
        flat[i] = original - eps
        minus = float(fn(*inputs).data)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-4,
    rtol: float = 1e-4,
) -> bool:
    """Verify analytic gradients of scalar ``fn`` against finite differences.

    Raises ``AssertionError`` with a diagnostic message on mismatch; returns
    True otherwise, so it can be used directly inside ``assert gradcheck(...)``.
    """
    for tensor in inputs:
        tensor.zero_grad()
    out = fn(*inputs)
    if out.data.size != 1:
        raise ValueError("gradcheck requires a scalar-valued function")
    out.backward()
    for idx, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(fn, inputs, idx, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch for input {idx}: max abs diff {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
