"""Core :class:`Tensor` type with reverse-mode automatic differentiation.

The design follows the classic tape-free "define-by-run" pattern: every
operation produces a new :class:`Tensor` that remembers its parents and a
closure computing the local vector-Jacobian product.  Calling
:meth:`Tensor.backward` on a scalar output topologically sorts the implicit
graph and accumulates gradients into every reachable tensor that has
``requires_grad=True``.

Data lives in arrays of the *active backend* (see
:mod:`repro.tensor.backend`) — ``numpy.ndarray`` unless a run opted into an
alternative array library — coerced at construction to the process default
dtype (see :mod:`repro.tensor.dtype`); ``float64`` unless a trainer opted
into a ``float32`` scope; float64 keeps the finite-difference gradient
checks in the test-suite tight.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.tensor.backend import get_backend
from repro.tensor.dtype import get_default_dtype

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager that disables graph construction (like torch.no_grad)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded for differentiation."""
    return _GRAD_ENABLED


def _as_array(value):
    """Coerce python scalars / lists / arrays to a default-dtype backend array."""
    return get_backend().asarray(value, dtype=get_default_dtype())


def unbroadcast(grad, shape: tuple[int, ...]):
    """Reduce ``grad`` so its shape matches ``shape`` after broadcasting.

    numpy broadcasting either prepends axes or stretches size-1 axes; the
    adjoint of broadcasting is summation over exactly those axes.
    """
    if grad.shape == shape:
        return grad
    xp = get_backend().xp
    # Sum over prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = xp.sum(grad, axis=tuple(range(extra)))
    # Sum over stretched size-1 axes.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = xp.sum(grad, axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed array node in an autodiff graph.

    Parameters
    ----------
    data:
        Array-like payload; converted to the default dtype
        (:func:`repro.tensor.dtype.get_default_dtype`).
    requires_grad:
        If True, gradients are accumulated into :attr:`grad` during
        :meth:`backward`.
    parents:
        Internal — tensors this node was computed from.
    backward_fn:
        Internal — closure mapping the output gradient to a tuple of parent
        gradients (entries may be ``None`` for non-differentiable parents).
    name:
        Optional label used in ``repr`` for debugging.
    """

    __slots__ = ("data", "requires_grad", "grad", "_parents", "_backward_fn", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: Sequence["Tensor"] = (),
        backward_fn: Callable[[np.ndarray], tuple] | None = None,
        name: str | None = None,
    ) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._parents: tuple[Tensor, ...] = tuple(parents)
        self._backward_fn = backward_fn
        self.name = name

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        """Tensor of zeros with the given shape."""
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        """Tensor of ones with the given shape."""
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @classmethod
    def _wrap(
        cls,
        data,
        requires_grad: bool = False,
        parents: Sequence["Tensor"] = (),
        backward_fn: Callable[[np.ndarray], tuple] | None = None,
    ) -> "Tensor":
        """Wrap an existing backend array *without* the default-dtype recast.

        ``__init__`` deliberately coerces to :func:`get_default_dtype` so
        user-facing construction is predictable; internal paths that already
        hold a correctly-typed array (op outputs, ``detach``/``copy``) must
        not re-coerce, or a float32 model handled outside its training
        ``dtype_scope`` would silently upcast to float64.
        """
        obj = cls.__new__(cls)
        obj.data = data
        obj.requires_grad = bool(requires_grad)
        obj.grad = None
        obj._parents = tuple(parents)
        obj._backward_fn = backward_fn
        obj.name = None
        return obj

    @staticmethod
    def from_op(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward_fn: Callable[[np.ndarray], tuple],
    ) -> "Tensor":
        """Build the result tensor of an op, respecting the no_grad context.

        The op output keeps its own dtype (ops derive dtypes from their
        inputs); only scalar outputs of reductions are normalised from numpy
        scalars to 0-d arrays.
        """
        data = get_backend().asarray(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            return Tensor._wrap(
                data, requires_grad=True, parents=parents, backward_fn=backward_fn
            )
        return Tensor._wrap(data)

    # ------------------------------------------------------------------ #
    # basic introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions of the underlying array."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return int(np.prod(self.data.shape, dtype=np.int64))

    @property
    def T(self) -> "Tensor":
        """Transpose (reverses all axes), differentiable."""
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        grad = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad}{label})"

    def numpy(self) -> np.ndarray:
        """Return the raw ndarray (shared, not copied)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a python float.

        Raises ``ValueError`` on multi-element tensors (numpy's conversion
        ``TypeError`` buried the actual mistake — calling ``item()`` on a
        batch).
        """
        if self.size != 1:
            raise ValueError(
                f"item() requires a single-element tensor, got shape {self.shape}"
            )
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph.

        The source dtype is preserved: detaching a float32 model outside its
        training ``dtype_scope`` must not upcast it to float64.
        """
        return Tensor._wrap(self.data)

    def copy(self) -> "Tensor":
        """Return a graph-detached deep copy (dtype preserved, see detach)."""
        return Tensor._wrap(get_backend().copy(self.data))

    # ------------------------------------------------------------------ #
    # autodiff driver
    # ------------------------------------------------------------------ #
    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def backward(self, grad: np.ndarray | float | None = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to 1.0, which requires this tensor to be
            a scalar.
        """
        backend = get_backend()
        if grad is None:
            if self.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar "
                    f"output, got shape {self.shape}"
                )
            grad = backend.xp.ones_like(self.data)
        # Seed in the *output's* dtype, not the scope default: a float32
        # graph differentiated outside its dtype_scope must stay float32.
        grad = backend.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = backend.copy(backend.xp.broadcast_to(grad, self.data.shape))

        order = self._topological_order()
        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward_fn is None:
                # Leaf tensor: accumulate.
                if node.grad is None:
                    node.grad = backend.copy(node_grad)
                else:
                    node.grad = node.grad + node_grad
                continue
            if node._backward_fn is None:
                continue
            parent_grads = node._backward_fn(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad
            # Deliberately leaf-only: interior nodes never populate .grad
            # (there is no retain_grad); pinned by the test-suite.

    def _topological_order(self) -> list["Tensor"]:
        """Return nodes reachable from self in reverse topological order."""
        visited: set[int] = set()
        order: list[Tensor] = []
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        order.reverse()
        return order

    # ------------------------------------------------------------------ #
    # operator sugar — implementations live in repro.tensor.ops
    # ------------------------------------------------------------------ #
    def __add__(self, other):
        from repro.tensor import ops

        return ops.add(self, other)

    __radd__ = __add__

    def __neg__(self):
        from repro.tensor import ops

        return ops.neg(self)

    def __sub__(self, other):
        from repro.tensor import ops

        return ops.sub(self, other)

    def __rsub__(self, other):
        from repro.tensor import ops

        return ops.sub(other, self)

    def __mul__(self, other):
        from repro.tensor import ops

        return ops.mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        from repro.tensor import ops

        return ops.div(self, other)

    def __rtruediv__(self, other):
        from repro.tensor import ops

        return ops.div(other, self)

    def __pow__(self, exponent):
        from repro.tensor import ops

        return ops.power(self, exponent)

    def __matmul__(self, other):
        from repro.tensor import ops

        return ops.matmul(self, other)

    def __getitem__(self, index):
        from repro.tensor import ops

        return ops.index(self, index)

    # reductions / shapes as methods
    def sum(self, axis=None, keepdims: bool = False):
        from repro.tensor import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        from repro.tensor import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        from repro.tensor import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def transpose(self, axes: tuple[int, ...] | None = None):
        from repro.tensor import ops

        return ops.transpose(self, axes)

    def relu(self):
        from repro.tensor import ops

        return ops.relu(self)

    def sigmoid(self):
        from repro.tensor import ops

        return ops.sigmoid(self)

    def tanh(self):
        from repro.tensor import ops

        return ops.tanh(self)

    def exp(self):
        from repro.tensor import ops

        return ops.exp(self)

    def log(self):
        from repro.tensor import ops

        return ops.log(self)

    def sqrt(self):
        from repro.tensor import ops

        return ops.sqrt(self)

    def abs(self):
        from repro.tensor import ops

        return ops.absolute(self)


def as_tensor(value) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def collect_parameters(tensors: Iterable[Tensor]) -> list[Tensor]:
    """Filter an iterable down to tensors that require gradients."""
    return [t for t in tensors if isinstance(t, Tensor) and t.requires_grad]
