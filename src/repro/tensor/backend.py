"""Array-API backend seam for the tensor engine.

Historically every op in :mod:`repro.tensor.ops` (and the layers and
optimisers built on it) called ``numpy`` directly, which welded the whole
autograd engine to one CPU array library.  This module cuts a narrow seam
between the engine and the array library: ops ask the *active backend* for

* ``xp`` — a numpy-flavoured namespace (``xp.exp``, ``xp.where``,
  ``xp.sum(a, axis=..., keepdims=...)``, …) the forward/backward math is
  written against, and
* a handful of primitives with no uniform array-API spelling
  (:meth:`ArrayBackend.scatter_rows`, :meth:`ArrayBackend.index_add`,
  :meth:`ArrayBackend.spmm`) plus fused kernels
  (:meth:`ArrayBackend.adam_step`).

The default :class:`NumpyBackend` exposes ``numpy`` itself as ``xp``, so the
numpy path executes the very same ufunc calls it always did — bit-identical
to the pre-seam engine.  Alternative backends are *registered*, not
imported: the ``"torch"`` entry resolves ``import torch`` lazily on first
use and raises :class:`BackendUnavailableError` when the wheel is absent,
so CI environments without torch skip cleanly instead of failing at import
time.  Adding a GPU or parallel backend is therefore a registration::

    from repro.tensor import backend

    class CupyBackend(backend.ArrayBackend):
        name = "cupy"
        ...

    backend.register_backend("cupy", CupyBackend)

and every tensor op, layer, loss and optimiser runs on it unchanged.

The intended entry point mirrors :func:`repro.tensor.dtype.dtype_scope`::

    with backend_scope("torch"):
        model = GCN(...)
        trainer.fit(...)

``set_backend`` exists as the primitive for long-lived workers that
configure the backend once at startup.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterator

import numpy as np
import scipy.sparse as sp

__all__ = [
    "ArrayBackend",
    "BackendUnavailableError",
    "NumpyBackend",
    "TorchBackend",
    "available_backends",
    "backend_scope",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "set_backend",
]


class BackendUnavailableError(RuntimeError):
    """The backend is registered but its array library cannot be imported."""


# Above this many gathered rows the scatter adjoint routes through a sparse
# matmul (one CSR selection matrix transposed against the gradient), which is
# ~8x faster than ``np.add.at``'s unbuffered loop; below it the construction
# overhead is not worth it.
_SCATTER_SPMM_THRESHOLD = 4096


class ArrayBackend:
    """Protocol the tensor engine programs against.

    Subclasses provide a numpy-flavoured namespace ``xp`` plus the
    primitives below.  The base-class implementations of the *fused*
    kernels are generic ``xp`` compositions, so a new backend only has to
    override them when it has something faster (or more in-place) to offer.
    """

    name = "abstract"
    #: numpy-flavoured namespace (``numpy`` itself for the default backend).
    xp = None

    # ------------------------------------------------------------------ #
    # array construction / conversion
    # ------------------------------------------------------------------ #
    def asarray(self, value, dtype=None):
        """Coerce ``value`` to this backend's array type.

        ``dtype`` is a numpy dtype (or None to keep the source dtype for
        arrays already of this backend's type).
        """
        raise NotImplementedError

    def copy(self, array):
        """Deep copy of a backend array."""
        raise NotImplementedError

    def to_numpy(self, array) -> np.ndarray:
        """Convert a backend array to a numpy ndarray (may share memory)."""
        raise NotImplementedError

    def np_dtype(self, array) -> np.dtype:
        """The numpy dtype corresponding to a backend array's dtype."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # primitives without a uniform array-API spelling
    # ------------------------------------------------------------------ #
    def index_add(self, target, index, values) -> None:
        """In-place ``target[index] += values`` with duplicate accumulation
        (``np.add.at`` semantics; ``index`` is anything numpy fancy-indexing
        accepts for the numpy backend, an integer array elsewhere)."""
        raise NotImplementedError

    def scatter_rows(self, indices, grad, out_shape):
        """Sum gradient rows into their source rows (adjoint of a row gather).

        ``indices`` has any shape; ``grad`` has shape ``indices.shape +
        rest``; returns an array of ``out_shape``.
        """
        raise NotImplementedError

    def prepare_spmm(self, matrix: sp.spmatrix, dtype: np.dtype):
        """Convert a constant scipy sparse matrix to this backend's sparse
        representation at ``dtype``; the returned *handle* is opaque and
        reusable (the fused fair loss caches it across steps)."""
        raise NotImplementedError

    def spmm_apply(self, handle, dense):
        """``matrix @ dense`` for a handle from :meth:`prepare_spmm`."""
        raise NotImplementedError

    def spmm_adjoint(self, handle, grad):
        """Adjoint of :meth:`spmm_apply` w.r.t. the dense operand:
        ``matrix.T @ grad``."""
        raise NotImplementedError

    def spmm(self, matrix: sp.spmatrix, dense):
        """One-shot sparse @ dense; returns ``(product, handle)`` so the
        op's backward closure can reuse the prepared matrix."""
        handle = self.prepare_spmm(matrix, self.np_dtype(dense))
        return self.spmm_apply(handle, dense), handle

    def transpose(self, array, axes=None):
        """Permute axes (reverse when ``axes`` is None)."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # fused kernels
    # ------------------------------------------------------------------ #
    def adam_step(
        self,
        param,
        grad,
        m,
        v,
        lr: float,
        beta1: float,
        beta2: float,
        eps: float,
        bias1: float,
        bias2: float,
        weight_decay: float,
    ) -> None:
        """One fused, in-place Adam update of ``param`` (and state ``m, v``).

        Bit-identical to the composed update
        ``p -= lr * (m/bias1) / (sqrt(v/bias2) + eps)`` with
        ``m = β₁m + (1-β₁)g`` and ``v = β₂v + (1-β₂)g²``, but without the
        chain of full-size temporaries the composed spelling allocates.
        """
        if weight_decay:
            grad = grad + weight_decay * param
        m *= beta1
        m += (1.0 - beta1) * grad
        v *= beta2
        v += (1.0 - beta2) * (grad * grad)
        denom = self.xp.sqrt(v / bias2)
        denom += eps
        update = m / bias1
        update *= lr
        update /= denom
        param -= update


class NumpyBackend(ArrayBackend):
    """The default backend: ``xp`` *is* numpy, so every call is the same
    ufunc the pre-seam engine issued — bit-identical by construction."""

    name = "numpy"
    xp = np

    def asarray(self, value, dtype=None):
        if isinstance(value, np.ndarray):
            if dtype is None or value.dtype == dtype:
                return value
            return value.astype(dtype)
        return np.asarray(value, dtype=dtype)

    def copy(self, array):
        return np.asarray(array).copy()

    def to_numpy(self, array) -> np.ndarray:
        return np.asarray(array)

    def np_dtype(self, array) -> np.dtype:
        return array.dtype

    def index_add(self, target, index, values) -> None:
        np.add.at(target, index, values)

    def scatter_rows(self, indices, grad, out_shape):
        flat_idx = indices.reshape(-1)
        if flat_idx.size < _SCATTER_SPMM_THRESHOLD:
            full = np.zeros(out_shape, dtype=grad.dtype)
            np.add.at(full, indices, grad)
            return full
        flat_grad = np.ascontiguousarray(grad).reshape(flat_idx.size, -1)
        selection = sp.csr_matrix(
            (
                np.ones(flat_idx.size, dtype=grad.dtype),
                flat_idx,
                np.arange(flat_idx.size + 1),
            ),
            shape=(flat_idx.size, out_shape[0]),
        )
        return (selection.T @ flat_grad).reshape(out_shape)

    def prepare_spmm(self, matrix: sp.spmatrix, dtype: np.dtype):
        matrix = matrix.tocsr()
        if matrix.dtype != dtype:
            # Block/adjacency matrices are float64 constants; casting them to
            # the operand dtype keeps float32 activations float32 instead of
            # silently upcasting every message-passing product.
            matrix = matrix.astype(dtype)
        return matrix

    def spmm_apply(self, handle, dense):
        return handle @ dense

    def spmm_adjoint(self, handle, grad):
        return handle.T @ grad

    def transpose(self, array, axes=None):
        return array.transpose(axes)


class _TorchNamespace:
    """Minimal numpy-flavoured view over ``torch``.

    Only the surface the engine's ops actually use is adapted; everything
    else falls through to the torch module via ``__getattr__``.  The
    axis/keepdims keywords are translated to torch's dim/keepdim spelling
    where they differ.
    """

    def __init__(self, torch_module) -> None:
        self._torch = torch_module

    def __getattr__(self, name: str):
        return getattr(self._torch, name)

    # --- reductions -------------------------------------------------- #
    def sum(self, array, axis=None, keepdims: bool = False):
        if axis is None:
            out = self._torch.sum(array)
            return out.reshape((1,) * array.dim()) if keepdims else out
        return self._torch.sum(array, dim=axis, keepdim=keepdims)

    def mean(self, array, axis=None, keepdims: bool = False):
        if axis is None:
            out = self._torch.mean(array)
            return out.reshape((1,) * array.dim()) if keepdims else out
        return self._torch.mean(array, dim=axis, keepdim=keepdims)

    def max(self, array, axis=None, keepdims: bool = False):
        if axis is None:
            return self._torch.max(array)
        return self._torch.amax(array, dim=axis, keepdim=keepdims)

    # --- shape ops ---------------------------------------------------- #
    def expand_dims(self, array, axis):
        axes = axis if isinstance(axis, tuple) else (axis,)
        for ax in sorted(ax % (array.dim() + len(axes)) for ax in axes):
            array = self._torch.unsqueeze(array, ax)
        return array

    def squeeze(self, array, axis=None):
        if axis is None:
            return self._torch.squeeze(array)
        return self._torch.squeeze(array, dim=axis)

    def concatenate(self, arrays, axis: int = 0):
        return self._torch.cat(list(arrays), dim=axis)

    def zeros(self, shape, dtype=None):
        return self._torch.zeros(
            shape, dtype=_to_torch_dtype(self._torch, dtype)
        )

    def asarray(self, value, dtype=None):
        return self._torch.as_tensor(
            value, dtype=_to_torch_dtype(self._torch, dtype)
        )


def _to_torch_dtype(torch_module, dtype):
    if dtype is None or isinstance(dtype, torch_module.dtype):
        return dtype
    return {
        "float32": torch_module.float32,
        "float64": torch_module.float64,
        "bool": torch_module.bool,
        "int32": torch_module.int32,
        "int64": torch_module.int64,
    }[np.dtype(dtype).name]


class TorchBackend(ArrayBackend):
    """CPU torch backend — the seam's proof of pluggability.

    Resolved lazily: constructing it imports torch and raises
    :class:`BackendUnavailableError` when the wheel is missing, so test
    suites can skip rather than fail.  The namespace covers the op surface
    exercised by the parity subset in ``tests/test_backend.py``; growing it
    is additive work on this class only, never on the engine.
    """

    name = "torch"

    def __init__(self) -> None:
        try:
            import torch
        except ImportError as exc:  # pragma: no cover - env-dependent
            raise BackendUnavailableError(
                "backend 'torch' requires the torch package (pip install "
                "torch --index-url https://download.pytorch.org/whl/cpu)"
            ) from exc
        self._torch = torch
        self.xp = _TorchNamespace(torch)

    def asarray(self, value, dtype=None):
        torch = self._torch
        if isinstance(value, torch.Tensor):
            wanted = _to_torch_dtype(torch, dtype)
            if wanted is None or value.dtype == wanted:
                return value
            return value.to(wanted)
        if isinstance(value, np.ndarray) and value.dtype == object:
            value = value.astype(np.float64)
        return torch.as_tensor(value, dtype=_to_torch_dtype(torch, dtype))

    def copy(self, array):
        return array.clone()

    def to_numpy(self, array) -> np.ndarray:
        return array.detach().cpu().numpy()

    def np_dtype(self, array) -> np.dtype:
        return np.dtype(str(array.dtype).removeprefix("torch."))

    def index_add(self, target, index, values) -> None:
        torch = self._torch

        def as_index(i):
            t = torch.as_tensor(np.asarray(i)) if not torch.is_tensor(i) else i
            return t if t.dtype == torch.bool else t.to(torch.int64)

        idx = tuple(as_index(i) for i in (index if isinstance(index, tuple) else (index,)))
        target.index_put_(idx, torch.as_tensor(values), accumulate=True)

    def scatter_rows(self, indices, grad, out_shape):
        torch = self._torch
        flat_idx = torch.as_tensor(
            np.asarray(indices).reshape(-1), dtype=torch.int64
        )
        flat_grad = grad.contiguous().reshape(flat_idx.shape[0], -1)
        full = torch.zeros(
            (out_shape[0], flat_grad.shape[1]), dtype=grad.dtype
        )
        full.index_add_(0, flat_idx, flat_grad)
        return full.reshape(out_shape)

    def prepare_spmm(self, matrix: sp.spmatrix, dtype: np.dtype):
        # Both directions are prepared eagerly: transposing a torch sparse
        # CSR tensor at adjoint time yields a CSC tensor with patchy matmul
        # support, so the handle carries (forward, adjoint) CSR tensors.
        return (
            self._csr_tensor(matrix.tocsr(), dtype),
            self._csr_tensor(matrix.T.tocsr(), dtype),
        )

    def _csr_tensor(self, matrix: sp.csr_matrix, dtype: np.dtype):
        torch = self._torch
        return torch.sparse_csr_tensor(
            torch.as_tensor(matrix.indptr, dtype=torch.int64),
            torch.as_tensor(matrix.indices, dtype=torch.int64),
            torch.as_tensor(matrix.data, dtype=_to_torch_dtype(torch, dtype)),
            size=matrix.shape,
        )

    def _spmm_with(self, sparse, dense):
        operand = dense if dense.dim() == 2 else dense.reshape(-1, 1)
        out = sparse @ operand
        return out if dense.dim() == 2 else out.reshape(-1)

    def spmm_apply(self, handle, dense):
        return self._spmm_with(handle[0], dense)

    def spmm_adjoint(self, handle, grad):
        return self._spmm_with(handle[1], grad)

    def transpose(self, array, axes=None):
        if axes is None:
            return array.permute(tuple(range(array.dim() - 1, -1, -1)))
        return array.permute(tuple(axes))


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #
_REGISTRY: dict[str, Callable[[], ArrayBackend]] = {}
_ACTIVE: ArrayBackend = NumpyBackend()
_INSTANCES: dict[str, ArrayBackend] = {"numpy": _ACTIVE}


def register_backend(name: str, factory: Callable[[], ArrayBackend]) -> None:
    """Register a backend factory under ``name`` (lazily constructed).

    The factory runs on first :func:`set_backend`/:func:`backend_scope` use;
    it should raise :class:`BackendUnavailableError` when its array library
    cannot be imported.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    _REGISTRY[name] = factory
    _INSTANCES.pop(name, None)


def available_backends() -> tuple[str, ...]:
    """Names of every registered backend (importable or not)."""
    return tuple(sorted(_REGISTRY))


def resolve_backend(name: str) -> str:
    """Validate that ``name`` is a registered backend; returns it unchanged.

    Raises ``ValueError`` for unknown names.  Does *not* import the array
    library — availability is only checked when the backend is activated,
    so configs naming an optional backend stay constructible everywhere.
    """
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown backend {name!r}; registered: {available_backends()}"
        )
    return name


def _instantiate(name: str) -> ArrayBackend:
    resolve_backend(name)
    if name not in _INSTANCES:
        _INSTANCES[name] = _REGISTRY[name]()
    return _INSTANCES[name]


def get_backend() -> ArrayBackend:
    """The backend new tensor ops execute on (numpy unless overridden)."""
    return _ACTIVE


def set_backend(backend: str | ArrayBackend) -> ArrayBackend:
    """Activate a backend by name or instance; returns the previous one.

    Prefer :func:`backend_scope` — an unbalanced global switch leaks into
    unrelated code (and tests).  Raises ``ValueError`` for unknown names
    and :class:`BackendUnavailableError` when the backend's array library
    is not importable.
    """
    global _ACTIVE
    previous = _ACTIVE
    if isinstance(backend, ArrayBackend):
        _ACTIVE = backend
    else:
        _ACTIVE = _instantiate(backend)
    return previous


@contextlib.contextmanager
def backend_scope(backend: str | ArrayBackend) -> Iterator[ArrayBackend]:
    """Context manager temporarily switching the active backend.

    Restores the previous backend on exit even when the body raises, so a
    failing torch run cannot poison subsequent numpy work.
    """
    previous = set_backend(backend)
    try:
        yield _ACTIVE
    finally:
        set_backend(previous)


register_backend("numpy", NumpyBackend)
register_backend("torch", TorchBackend)
# numpy was instantiated eagerly above; re-registering cleared the cache, so
# seed it again to keep get_backend() identity stable from import time.
_INSTANCES["numpy"] = _ACTIVE
