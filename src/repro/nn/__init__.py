"""Neural-network building blocks on top of :mod:`repro.tensor`.

Mirrors the small subset of ``torch.nn`` the paper's models require:
modules with recursively discovered parameters, linear layers, MLPs,
dropout, activations and classification losses.
"""

from repro.nn.module import Module, Parameter, ModuleList
from repro.nn.linear import Linear, MLP
from repro.nn.activations import ReLU, Sigmoid, Tanh, LeakyReLU, Identity
from repro.nn.dropout import Dropout
from repro.nn.norm import LayerNorm
from repro.nn.losses import (
    binary_cross_entropy_with_logits,
    cross_entropy,
    mse_loss,
    l2_distance,
)
from repro.nn import init

__all__ = [
    "Module",
    "Parameter",
    "ModuleList",
    "Linear",
    "MLP",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "LeakyReLU",
    "Identity",
    "Dropout",
    "LayerNorm",
    "binary_cross_entropy_with_logits",
    "cross_entropy",
    "mse_loss",
    "l2_distance",
    "init",
]
