"""Classification and distance losses.

The binary cross-entropy is computed directly from logits with the
log-sum-exp trick (``log(1 + e^z) = max(z, 0) + log(1 + e^{-|z|})``) so it is
stable for large-magnitude logits — this matters because fairness
regularisation sometimes pushes the classifier head to extreme confidence.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor
from repro.tensor import ops
from repro.tensor.tensor import as_tensor

__all__ = [
    "binary_cross_entropy_with_logits",
    "cross_entropy",
    "mse_loss",
    "l2_distance",
]


def binary_cross_entropy_with_logits(
    logits: Tensor,
    targets,
    weights=None,
) -> Tensor:
    """Mean BCE between logits and 0/1 targets, Eq. (10) of the paper.

    Parameters
    ----------
    logits:
        Raw scores, any shape.
    targets:
        0/1 labels broadcastable to ``logits`` (constant).
    weights:
        Optional per-element constant weights (e.g. class-balancing); the
        loss is a weighted mean.
    """
    logits = as_tensor(logits)
    targets = np.asarray(
        targets.data if isinstance(targets, Tensor) else targets,
        dtype=logits.data.dtype,
    )
    # loss = max(z, 0) - z*y + log(1 + exp(-|z|))
    zero = Tensor(np.zeros_like(logits.data))
    relu_part = ops.maximum(logits, zero)
    linear_part = ops.mul(logits, Tensor(targets))
    softplus_part = ops.log(ops.add(1.0, ops.exp(ops.neg(ops.absolute(logits)))))
    per_element = ops.add(ops.sub(relu_part, linear_part), softplus_part)
    if weights is not None:
        w = np.asarray(weights, dtype=logits.data.dtype)
        weighted = ops.mul(per_element, Tensor(w))
        return ops.div(ops.sum(weighted), float(w.sum()))
    return ops.mean(per_element)


def cross_entropy(logits: Tensor, targets) -> Tensor:
    """Mean multi-class cross-entropy from raw logits and integer labels."""
    logits = as_tensor(logits)
    labels = np.asarray(
        targets.data if isinstance(targets, Tensor) else targets
    ).astype(np.int64)
    log_probs = ops.log_softmax(logits, axis=-1)
    picked = ops.index(log_probs, (np.arange(len(labels)), labels))
    return ops.neg(ops.mean(picked))


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean squared error."""
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    diff = ops.sub(prediction, target)
    return ops.mean(ops.power(diff, 2.0))


def l2_distance(a: Tensor, b: Tensor, axis: int = -1) -> Tensor:
    """Row-wise squared L2 distance ``||a - b||²`` (Eq. 33 of the paper).

    Returns a tensor of per-row distances; callers take the mean/sum they
    need.  Squared distance keeps the objective smooth, matching Eq. (33).
    """
    diff = ops.sub(a, b)
    return ops.sum(ops.power(diff, 2.0), axis=axis)
