"""Classification and distance losses.

The binary cross-entropy is computed directly from logits with the
log-sum-exp trick (``log(1 + e^z) = max(z, 0) + log(1 + e^{-|z|})``) so it is
stable for large-magnitude logits — this matters because fairness
regularisation sometimes pushes the classifier head to extreme confidence.

:func:`binary_cross_entropy_with_logits` is a *fused* kernel: one graph node
with an analytic adjoint instead of the seven-op chain the formula naively
builds.  The chain allocated seven output tensors, seven closures, and — on
the way back — a gradient buffer per edge including full-size products for
constant parents that were then discarded.  The fused form computes the same
floating-point operations in the same order (value and gradient are
bit-identical to the composed graph; pinned by the test-suite), but touches
each array once.  :func:`binary_cross_entropy_with_logits_reference` keeps
the composed graph as the oracle for those pins.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor
from repro.tensor import ops
from repro.tensor.backend import get_backend
from repro.tensor.dtype import get_default_dtype
from repro.tensor.tensor import as_tensor

__all__ = [
    "binary_cross_entropy_with_logits",
    "binary_cross_entropy_with_logits_reference",
    "cross_entropy",
    "mse_loss",
    "l2_distance",
]


def _bce_constants(logits: Tensor, targets, weights):
    """Coerce targets/weights exactly as the composed graph did.

    Targets are first matched to the logits dtype, then (like any constant
    entering the graph) to the scope default; weights additionally validate
    against the silent-NaN case of an all-zero weight vector.
    """
    backend = get_backend()
    targets = np.asarray(
        targets.data if isinstance(targets, Tensor) else targets,
        dtype=backend.np_dtype(logits.data),
    )
    y = backend.asarray(targets, dtype=get_default_dtype())
    if weights is None:
        return y, None, None
    w = np.asarray(weights, dtype=backend.np_dtype(logits.data))
    wsum = float(w.sum())
    if wsum == 0.0:
        raise ValueError(
            "binary_cross_entropy_with_logits: weights sum to zero — the "
            "weighted mean is undefined (all-zero weight vector?)"
        )
    w_arr = backend.asarray(w, dtype=get_default_dtype())
    c_arr = backend.asarray(wsum, dtype=get_default_dtype())
    return y, w_arr, c_arr


def binary_cross_entropy_with_logits(
    logits: Tensor,
    targets,
    weights=None,
) -> Tensor:
    """Mean BCE between logits and 0/1 targets, Eq. (10) of the paper.

    Parameters
    ----------
    logits:
        Raw scores, any shape.
    targets:
        0/1 labels broadcastable to ``logits`` (constant).
    weights:
        Optional per-element constant weights (e.g. class-balancing); the
        loss is a weighted mean.  Raises ``ValueError`` when the weights sum
        to zero (previously a silent NaN loss).
    """
    logits = as_tensor(logits)
    backend = get_backend()
    xp = backend.xp
    y, w_arr, c_arr = _bce_constants(logits, targets, weights)

    # loss = max(z, 0) - z*y + log(1 + exp(-|z|)), fused into one node.
    z = logits.data
    zeros = xp.zeros_like(z)
    take = z >= zeros
    relu_part = xp.where(take, z, zeros)
    linear_part = z * y
    e = xp.exp(-xp.abs(z))
    one = backend.asarray(1.0, dtype=get_default_dtype())
    denom = one + e
    # In-place accumulation into the relu_part buffer; the association
    # order (relu - linear) + log(denom) is unchanged, so the value stays
    # bit-identical to the composed graph while skipping two temporaries.
    per_element = relu_part
    per_element -= linear_part
    per_element += xp.log(denom)
    if weights is None:
        count = int(np.prod(z.shape, dtype=np.int64))
        value = xp.mean(per_element)
    else:
        value = xp.sum(per_element * w_arr) / c_arr

    def backward(grad):
        # Upstream-gradient spreading, then the three contributions to z in
        # the composed graph's accumulation order: relu gate, linear term,
        # softplus chain.  Association order matters — float addition is not
        # associative and this backward is pinned bit-identical.
        if weights is None:
            g = xp.asarray(grad) / count
        else:
            g = xp.asarray(grad / c_arr)
        g = backend.copy(xp.broadcast_to(g, z.shape))
        if weights is not None:
            g *= w_arr
        # The composed accumulation is gz + (-g)·y + (-(g/denom)·e)·sign(z);
        # IEEE negation is exact and a + (-b) ≡ a - b bitwise, so the
        # subtract-in-place spelling below is bit-identical while avoiding
        # the composed graph's per-term temporaries.
        gz = g * take
        gz -= g * y
        chain = g / denom
        chain *= e
        chain *= xp.sign(z)
        gz -= chain
        return (gz,)

    return Tensor.from_op(value, (logits,), backward)


def binary_cross_entropy_with_logits_reference(
    logits: Tensor,
    targets,
    weights=None,
) -> Tensor:
    """Composed-graph BCE — the oracle :func:`binary_cross_entropy_with_logits`
    is pinned bit-identical to (value and gradient)."""
    logits = as_tensor(logits)
    targets = np.asarray(
        targets.data if isinstance(targets, Tensor) else targets,
        dtype=get_backend().np_dtype(logits.data),
    )
    zero = Tensor(np.zeros(logits.shape))
    relu_part = ops.maximum(logits, zero)
    linear_part = ops.mul(logits, Tensor(targets))
    softplus_part = ops.log(ops.add(1.0, ops.exp(ops.neg(ops.absolute(logits)))))
    per_element = ops.add(ops.sub(relu_part, linear_part), softplus_part)
    if weights is not None:
        w = np.asarray(weights, dtype=get_backend().np_dtype(logits.data))
        if float(w.sum()) == 0.0:
            raise ValueError(
                "binary_cross_entropy_with_logits: weights sum to zero — "
                "the weighted mean is undefined (all examples masked out)"
            )
        weighted = ops.mul(per_element, Tensor(w))
        return ops.div(ops.sum(weighted), float(w.sum()))
    return ops.mean(per_element)


def cross_entropy(logits: Tensor, targets) -> Tensor:
    """Mean multi-class cross-entropy from raw logits and integer labels."""
    logits = as_tensor(logits)
    labels = np.asarray(
        targets.data if isinstance(targets, Tensor) else targets
    ).astype(np.int64)
    log_probs = ops.log_softmax(logits, axis=-1)
    picked = ops.index(log_probs, (np.arange(len(labels)), labels))
    return ops.neg(ops.mean(picked))


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean squared error."""
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    diff = ops.sub(prediction, target)
    return ops.mean(ops.power(diff, 2.0))


def l2_distance(a: Tensor, b: Tensor, axis: int = -1) -> Tensor:
    """Row-wise squared L2 distance ``||a - b||²`` (Eq. 33 of the paper).

    Returns a tensor of per-row distances; callers take the mean/sum they
    need.  Squared distance keeps the objective smooth, matching Eq. (33).
    """
    diff = ops.sub(a, b)
    return ops.sum(ops.power(diff, 2.0), axis=axis)
