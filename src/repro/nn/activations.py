"""Activation modules wrapping the functional ops."""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor import Tensor
from repro.tensor import ops

__all__ = ["ReLU", "Sigmoid", "Tanh", "LeakyReLU", "Identity"]


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.relu(x)


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.sigmoid(x)


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.tanh(x)


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope (default 0.2, GAT-style)."""

    def __init__(self, negative_slope: float = 0.2) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return ops.leaky_relu(x, self.negative_slope)


class Identity(Module):
    """No-op module, useful as a configurable placeholder."""

    def forward(self, x: Tensor) -> Tensor:
        return x
