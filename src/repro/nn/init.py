"""Weight initialisation schemes.

All functions take an explicit ``numpy.random.Generator`` so that every model
in the reproduction is fully seeded — experiment functions never touch global
random state.
"""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "kaiming_uniform", "zeros", "uniform"]


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform init: U(-a, a) with a = gain*sqrt(6/(fan_in+fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier normal init with std = gain*sqrt(2/(fan_in+fan_out))."""
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He uniform init suited to ReLU networks: U(-a, a), a = sqrt(6/fan_in)."""
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def uniform(shape: tuple[int, ...], rng: np.random.Generator, bound: float) -> np.ndarray:
    """Plain uniform init on [-bound, bound]."""
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero init (used for biases)."""
    return np.zeros(shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) of a weight shape."""
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
