"""Normalisation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import Tensor
from repro.tensor import ops

__all__ = ["LayerNorm"]


class LayerNorm(Module):
    """Layer normalisation over the last axis with learnable affine.

    ``y = γ · (x − mean(x)) / sqrt(var(x) + ε) + β`` per row.  Useful for
    stabilising the deeper (2+ layer) backbone configurations.
    """

    def __init__(self, normalized_dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        if normalized_dim < 1:
            raise ValueError(f"normalized_dim must be >= 1, got {normalized_dim}")
        self.normalized_dim = normalized_dim
        self.eps = eps
        self.gain = Parameter(np.ones(normalized_dim), name="gain")
        self.bias = Parameter(np.zeros(normalized_dim), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        mean = ops.mean(x, axis=-1, keepdims=True)
        centered = ops.sub(x, mean)
        variance = ops.mean(ops.power(centered, 2.0), axis=-1, keepdims=True)
        normalised = ops.div(centered, ops.sqrt(ops.add(variance, self.eps)))
        return ops.add(ops.mul(normalised, self.gain), self.bias)

    def __repr__(self) -> str:
        return f"LayerNorm(normalized_dim={self.normalized_dim}, eps={self.eps})"
