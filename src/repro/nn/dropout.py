"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor
from repro.tensor import ops

__all__ = ["Dropout"]


class Dropout(Module):
    """Inverted dropout: active only in training mode.

    During training each element is zeroed with probability ``rate`` and the
    survivors are scaled by ``1 / (1 - rate)`` so the expected activation is
    unchanged; at eval time it is the identity.
    """

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return x
        mask = ops.dropout_mask(x.shape, self.rate, self.rng)
        return ops.mul(x, Tensor(mask))

    def __repr__(self) -> str:
        return f"Dropout(rate={self.rate})"
