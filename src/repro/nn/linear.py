"""Linear layer and multi-layer perceptron."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.activations import Identity, ReLU
from repro.nn.dropout import Dropout
from repro.nn.module import Module, ModuleList, Parameter
from repro.tensor import Tensor
from repro.tensor import ops

__all__ = ["Linear", "MLP"]


class Linear(Module):
    """Affine transform ``y = x @ W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    rng:
        Generator used for Xavier-uniform weight init.
    bias:
        Whether to learn an additive bias (default True).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform((in_features, out_features), rng), name="weight"
        )
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = ops.matmul(x, self.weight)
        if self.bias is not None:
            out = ops.add(out, self.bias)
        return out

    def __repr__(self) -> str:
        return (
            f"Linear(in_features={self.in_features}, "
            f"out_features={self.out_features}, bias={self.bias is not None})"
        )


class MLP(Module):
    """Multi-layer perceptron with configurable depth, activation and dropout.

    ``dims = [in, h1, ..., out]`` gives ``len(dims) - 1`` linear layers with
    the activation (and optional dropout) between consecutive layers but not
    after the final one.
    """

    def __init__(
        self,
        dims: list[int],
        rng: np.random.Generator,
        activation: Module | None = None,
        dropout: float = 0.0,
        bias: bool = True,
    ) -> None:
        super().__init__()
        if len(dims) < 2:
            raise ValueError(f"MLP needs at least [in, out] dims, got {dims}")
        self.dims = list(dims)
        self.activation = activation if activation is not None else ReLU()
        self.dropout = Dropout(dropout, rng) if dropout > 0 else Identity()
        self.layers = ModuleList(
            [Linear(dims[i], dims[i + 1], rng, bias=bias) for i in range(len(dims) - 1)]
        )

    def forward(self, x: Tensor) -> Tensor:
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i < len(self.layers) - 1:
                x = self.activation(x)
                x = self.dropout(x)
        return x

    def __repr__(self) -> str:
        return f"MLP(dims={self.dims})"
