"""Module / Parameter abstractions (a minimal ``torch.nn.Module`` analogue).

A :class:`Module` discovers its :class:`Parameter` attributes and child
modules reflectively, supports ``train()``/``eval()`` mode switching,
``zero_grad()`` and a flat ``state_dict`` for checkpointing the best model
during early stopping (the paper saves the best validation model).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.tensor.tensor import Tensor

__all__ = ["Parameter", "Module", "ModuleList"]


class Parameter(Tensor):
    """A :class:`Tensor` that always requires gradients (a learnable weight)."""

    def __init__(self, data, name: str | None = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and child :class:`Module` instances
    as attributes; :meth:`parameters` finds them recursively.  The boolean
    :attr:`training` flag toggles stochastic behaviour such as dropout.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------ #
    # reflection
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for attr, value in vars(self).items():
            name = f"{prefix}{attr}"
            if isinstance(value, Parameter):
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{name}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{name}.{i}.")

    def parameters(self) -> list[Parameter]:
        """Return all learnable parameters of this module and its children."""
        return [param for _, param in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant module."""
        yield self
        for value in vars(self).items():
            pass
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # ------------------------------------------------------------------ #
    # state handling
    # ------------------------------------------------------------------ #
    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        """Set training mode on this module and all descendants."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Set evaluation (inference) mode."""
        return self.train(False)

    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a name → copied-array snapshot of all parameters."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load a snapshot produced by :meth:`state_dict` (strict)."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, array in state.items():
            target = params[name]
            if target.data.shape != array.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"expected {target.data.shape}, got {array.shape}"
                )
            target.data = array.copy()

    def num_parameters(self) -> int:
        """Total number of scalar learnable parameters."""
        return sum(param.size for param in self.parameters())

    # ------------------------------------------------------------------ #
    # call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """Container holding an ordered list of sub-modules."""

    def __init__(self, modules: list[Module] | None = None) -> None:
        super().__init__()
        self.items: list[Module] = list(modules or [])

    def append(self, module: Module) -> None:
        """Add a module to the end of the list."""
        self.items.append(module)

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, idx: int) -> Module:
        return self.items[idx]

    def forward(self, *args, **kwargs):  # pragma: no cover - container only
        raise RuntimeError("ModuleList is a container and cannot be called")
