"""Minibatch neighbour-sampled training for large graphs.

:func:`fit_minibatch` mirrors :func:`repro.training.loop.fit_binary_classifier`
(Adam, best-validation model selection, optional early stopping, a
:class:`~repro.training.loop.FitHistory` record) but replaces the full-batch
epoch with GraphSAGE-style sampled minibatches: every step touches only the
fanout-bounded computation graph of one seed batch, so peak memory is
independent of the number of nodes — no dense ``(N, N)`` operator and no
full-graph ``(N, hidden)`` activation is ever materialised during training.

:func:`predict_logits_batched` is the matching memory-bounded inference path:
it folds the *full* (un-sampled) L-hop neighbourhood of each batch, so its
outputs equal :func:`~repro.training.loop.predict_logits` exactly while only
holding one batch's computation graph at a time.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np
import scipy.sparse as sp

from repro.fairness.metrics import accuracy
from repro.graph.sampling import NeighborSampler
from repro.nn import binary_cross_entropy_with_logits
from repro.nn.module import Module
from repro.optim import Adam
from repro.tensor import Tensor, no_grad
from repro.training.loop import FitHistory

__all__ = [
    "DEFAULT_FANOUT",
    "embed_batched",
    "fit_minibatch",
    "predict_logits_batched",
    "iter_minibatches",
]

# Per-layer neighbour fanout used whenever the caller does not specify one
# (shared by fit_minibatch, FairwosConfig and the CLI display).
DEFAULT_FANOUT = 10


def iter_minibatches(
    indices: np.ndarray,
    batch_size: int,
    rng: np.random.Generator | None = None,
) -> Iterator[np.ndarray]:
    """Yield ``indices`` in batches of ``batch_size`` (shuffled when ``rng``)."""
    indices = np.asarray(indices, dtype=np.int64).reshape(-1)
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if rng is not None:
        indices = rng.permutation(indices)
    for start in range(0, indices.size, batch_size):
        yield indices[start : start + batch_size]


def _as_feature_array(features) -> np.ndarray:
    """Accept a numpy array or constant Tensor of node features."""
    if isinstance(features, Tensor):
        return features.data
    return np.asarray(features, dtype=np.float64)


def _resolve_num_layers(model: Module, num_layers: int | None) -> int:
    layers = num_layers if num_layers is not None else getattr(model, "num_layers", None)
    if layers is None:
        raise ValueError(
            "model exposes no num_layers attribute; pass num_layers explicitly"
        )
    return int(layers)


def predict_logits_batched(
    model: Module,
    features,
    adjacency: sp.spmatrix,
    nodes: np.ndarray | None = None,
    batch_size: int = 1024,
    num_layers: int | None = None,
    sampler: NeighborSampler | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Inference-mode logits computed one seed batch at a time.

    By default each batch folds its exact L-hop neighbourhood (fanout
    ``None``), so the result matches full-batch ``predict_logits`` while
    keeping memory bounded by the batch's receptive field.  Pass a custom
    ``sampler`` to trade exactness for speed on very dense graphs.

    Parameters
    ----------
    model:
        A block-capable model (``model(features, blocks) -> logits``).
    features:
        ``(N, F)`` numpy array or Tensor of all node features.
    adjacency:
        Full-graph CSR adjacency.
    nodes:
        Seed node ids to score (default: all nodes, in order).
    batch_size:
        Seeds per inference batch.
    num_layers:
        Number of message-passing layers (default: ``model.num_layers``).
    sampler:
        Optional pre-built sampler overriding the exact full-neighbourhood
        default (its ``num_layers`` must match the model).
    rng:
        Only needed when ``sampler`` actually samples.
    """
    feature_array = _as_feature_array(features)
    if sampler is None:
        sampler = NeighborSampler.full_neighborhood(
            adjacency, _resolve_num_layers(model, num_layers)
        )
    if nodes is None:
        nodes = np.arange(sampler.num_nodes)
    nodes = np.asarray(nodes, dtype=np.int64).reshape(-1)
    if rng is None:
        # Fresh entropy: a custom *sampling* sampler without an explicit rng
        # must not silently return identical draws on every call.  The exact
        # full-neighbourhood default never consumes the generator.
        rng = np.random.default_rng()

    logits = np.empty(nodes.size, dtype=np.float64)
    was_training = model.training
    model.eval()
    with no_grad():
        filled = 0
        for batch in iter_minibatches(nodes, batch_size):
            blocks = sampler.sample_blocks(batch, rng)
            batch_features = Tensor(feature_array[blocks[0].src_nodes])
            logits[filled : filled + batch.size] = model(batch_features, blocks).data
            filled += batch.size
    model.train(was_training)
    return logits


def embed_batched(
    model: Module,
    features,
    adjacency: sp.spmatrix,
    nodes: np.ndarray | None = None,
    batch_size: int = 1024,
    num_layers: int | None = None,
    sampler: NeighborSampler | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Inference-mode node representations, one seed batch at a time.

    The representation-space analogue of :func:`predict_logits_batched`:
    folds each batch's exact L-hop neighbourhood through ``model.embed_blocks``
    so the output matches full-batch ``model.embed`` while only one batch's
    computation graph is live.  Used by the sampled fine-tune phase to
    refresh the counterfactual index without a full-graph forward pass.

    Returns an ``(len(nodes), hidden)`` float64 array.
    """
    feature_array = _as_feature_array(features)
    if sampler is None:
        sampler = NeighborSampler.full_neighborhood(
            adjacency, _resolve_num_layers(model, num_layers)
        )
    if nodes is None:
        nodes = np.arange(sampler.num_nodes)
    nodes = np.asarray(nodes, dtype=np.int64).reshape(-1)
    if nodes.size == 0:
        # The embedding width is unknown without a forward pass, so an
        # empty request has no well-defined result shape.
        raise ValueError("nodes must be non-empty")
    if rng is None:
        # Matches predict_logits_batched: the exact full-neighbourhood
        # default never consumes the generator; a custom sampling sampler
        # without an explicit rng must not repeat identical draws.
        rng = np.random.default_rng()

    out: np.ndarray | None = None
    was_training = model.training
    model.eval()
    with no_grad():
        filled = 0
        for batch in iter_minibatches(nodes, batch_size):
            blocks = sampler.sample_blocks(batch, rng)
            batch_features = Tensor(feature_array[blocks[0].src_nodes])
            h = model.embed_blocks(batch_features, blocks).data
            if out is None:
                out = np.empty((nodes.size, h.shape[1]), dtype=np.float64)
            out[filled : filled + batch.size] = h
            filled += batch.size
    model.train(was_training)
    return out


def fit_minibatch(
    model: Module,
    features,
    adjacency: sp.spmatrix,
    labels: np.ndarray,
    train_mask: np.ndarray,
    val_mask: np.ndarray,
    epochs: int,
    fanouts: Sequence[int | None] | None = None,
    batch_size: int = 512,
    lr: float = 1e-3,
    weight_decay: float = 0.0,
    patience: int | None = None,
    replace: bool = False,
    eval_batch_size: int | None = None,
    rng: np.random.Generator | int | None = None,
    extra_loss=None,
) -> FitHistory:
    """Train ``model`` with sampled minibatches; restore its best-val weights.

    The contract mirrors :func:`~repro.training.loop.fit_binary_classifier`:
    BCE-with-logits on the train nodes, per-epoch validation accuracy,
    best-model checkpointing and optional early stopping — only the epoch
    structure changes from one full-graph step to
    ``ceil(|train| / batch_size)`` sampled steps.

    Parameters
    ----------
    model:
        Block-capable model (any :class:`~repro.gnnzoo.base.GNNBackbone`).
    features:
        ``(N, F)`` numpy array or Tensor; rows are gathered per batch.
    adjacency, labels, train_mask, val_mask:
        Full-graph inputs, as in ``fit_binary_classifier``.
    epochs:
        Maximum epoch count.
    fanouts:
        Per-layer neighbour fanouts, input layer first (default:
        ``DEFAULT_FANOUT`` per layer).  Entries may be ``None`` to keep
        full neighbourhoods.
    batch_size:
        Seed nodes per training step.
    lr, weight_decay, patience:
        Optimiser / early-stopping settings (as full-batch).
    replace:
        Sample neighbours with replacement.
    eval_batch_size:
        Batch size for the exact validation pass (default: ``batch_size``).
    rng:
        Generator (or seed) driving shuffling and neighbour sampling.
    extra_loss:
        Optional callable ``(logits, batch_indices) -> Tensor`` added to the
        per-batch BCE objective.
    """
    labels = np.asarray(labels)
    train_mask = np.asarray(train_mask, dtype=bool)
    val_mask = np.asarray(val_mask, dtype=bool)
    if epochs < 1:
        raise ValueError(f"epochs must be >= 1, got {epochs}")
    if not train_mask.any() or not val_mask.any():
        raise ValueError("train and validation masks must be non-empty")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    feature_array = _as_feature_array(features)
    num_model_layers = _resolve_num_layers(model, None)
    if fanouts is None:
        fanouts = (DEFAULT_FANOUT,) * num_model_layers
    sampler = NeighborSampler(adjacency, fanouts, replace=replace)
    if sampler.num_layers != num_model_layers:
        raise ValueError(
            f"got {sampler.num_layers} fanouts for a {num_model_layers}-layer model"
        )
    eval_sampler = NeighborSampler.full_neighborhood(adjacency, num_model_layers)

    optimizer = Adam(model.parameters(), lr=lr, weight_decay=weight_decay)
    history = FitHistory()
    best_state = model.state_dict()
    train_indices = np.where(train_mask)[0]
    val_indices = np.where(val_mask)[0]
    val_labels = labels[val_mask]
    since_best = 0

    for epoch in range(epochs):
        model.train()
        epoch_loss = 0.0
        for batch in iter_minibatches(train_indices, batch_size, rng):
            blocks = sampler.sample_blocks(batch, rng)
            batch_features = Tensor(feature_array[blocks[0].src_nodes])
            optimizer.zero_grad()
            logits = model(batch_features, blocks)
            loss = binary_cross_entropy_with_logits(
                logits, labels[batch].astype(np.float64)
            )
            if extra_loss is not None:
                loss = loss + extra_loss(logits, batch)
            loss.backward()
            optimizer.step()
            epoch_loss += float(loss.data) * batch.size

        val_logits = predict_logits_batched(
            model,
            feature_array,
            adjacency,
            nodes=val_indices,
            batch_size=eval_batch_size or batch_size,
            sampler=eval_sampler,
        )
        val_acc = accuracy((val_logits > 0).astype(np.int64), val_labels)
        history.train_loss.append(epoch_loss / train_indices.size)
        history.val_accuracy.append(val_acc)

        if val_acc > history.best_val_accuracy:
            history.best_val_accuracy = val_acc
            history.best_epoch = epoch
            best_state = model.state_dict()
            since_best = 0
        else:
            since_best += 1
            if patience is not None and since_best > patience:
                history.stopped_early = True
                break

    model.load_state_dict(best_state)
    return history
