"""Minibatch neighbour-sampled training for large graphs.

:func:`fit_minibatch` mirrors :func:`repro.training.loop.fit_binary_classifier`
(Adam, best-validation model selection, optional early stopping, a
:class:`~repro.training.loop.FitHistory` record) but replaces the full-batch
epoch with GraphSAGE-style sampled minibatches: every step touches only the
fanout-bounded computation graph of one seed batch, so peak memory is
independent of the number of nodes — no dense ``(N, N)`` operator and no
full-graph ``(N, hidden)`` activation is ever materialised during training.

The loop skeleton itself lives in :class:`repro.training.engine.MinibatchEngine`
(shared with the Fairwos fine-tune and the FairRF/FairGKD sampled loops);
``fit_minibatch`` is the plain supervised instantiation: BCE on the train
batch plus an optional extra loss, best-val checkpointing and an optional
epoch-level sampling cache (``cache_epochs``).  Note the cache trades that
memory bound for sampling speed: with ``cache_epochs > 1`` one whole
epoch's batch/block structure stays resident between refreshes, so peak
memory grows with the epoch's total receptive field (roughly the sampled
edge set over all batches) instead of a single batch's — keep the default
of 1 when memory, not sampling wall-time, is the binding constraint.

:func:`predict_logits_batched` is the matching memory-bounded inference path:
it folds the *full* (un-sampled) L-hop neighbourhood of each batch, so its
outputs equal :func:`~repro.training.loop.predict_logits` exactly while only
holding one batch's computation graph at a time.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.nn import binary_cross_entropy_with_logits
from repro.nn.module import Module
from repro.training.engine import (
    DEFAULT_FANOUT,
    MinibatchEngine,
    TrainStep,
    embed_batched,
    iter_minibatches,
    predict_logits_batched,
)
from repro.training.loop import FitHistory

__all__ = [
    "DEFAULT_FANOUT",
    "embed_batched",
    "fit_minibatch",
    "predict_logits_batched",
    "iter_minibatches",
]


def fit_minibatch(
    model: Module,
    features,
    adjacency: sp.spmatrix,
    labels: np.ndarray,
    train_mask: np.ndarray,
    val_mask: np.ndarray,
    epochs: int,
    fanouts: Sequence[int | None] | None = None,
    batch_size: int = 512,
    lr: float = 1e-3,
    weight_decay: float = 0.0,
    patience: int | None = None,
    replace: bool = False,
    eval_batch_size: int | None = None,
    rng: np.random.Generator | int | None = None,
    extra_loss=None,
    cache_epochs: int = 1,
    num_workers: int = 0,
    prefetch_epochs: int = 1,
    worker_pool=None,
) -> FitHistory:
    """Train ``model`` with sampled minibatches; restore its best-val weights.

    The contract mirrors :func:`~repro.training.loop.fit_binary_classifier`:
    BCE-with-logits on the train nodes, per-epoch validation accuracy,
    best-model checkpointing and optional early stopping — only the epoch
    structure changes from one full-graph step to
    ``ceil(|train| / batch_size)`` sampled steps.

    Parameters
    ----------
    model:
        Block-capable model (any :class:`~repro.gnnzoo.base.GNNBackbone`).
    features:
        ``(N, F)`` numpy array or Tensor; rows are gathered per batch.
    adjacency, labels, train_mask, val_mask:
        Full-graph inputs, as in ``fit_binary_classifier``.
    epochs:
        Maximum epoch count.
    fanouts:
        Per-layer neighbour fanouts, input layer first (default:
        ``DEFAULT_FANOUT`` per layer).  Entries may be ``None`` to keep
        full neighbourhoods.
    batch_size:
        Seed nodes per training step.
    lr, weight_decay, patience:
        Optimiser / early-stopping settings (as full-batch).
    replace:
        Sample neighbours with replacement.
    eval_batch_size:
        Batch size for the exact validation pass (default: ``batch_size``).
    rng:
        Generator (or seed) driving shuffling and neighbour sampling.
    extra_loss:
        Optional callable ``(logits, batch_indices) -> Tensor`` added to the
        per-batch BCE objective.
    cache_epochs:
        Epoch-level sampling cache window: batch composition and sampled
        blocks are refreshed every ``cache_epochs`` epochs and replayed in
        between (see :class:`~repro.graph.sampling.EpochBlockCache` for the
        RNG-stream contract).  The default ``1`` samples freshly every
        epoch.
    num_workers, prefetch_epochs, worker_pool:
        Multiprocess sampling (see :mod:`repro.training.parallel`): with
        ``num_workers > 0`` fresh epochs are sampled by worker processes
        over shared-memory CSR, ``prefetch_epochs`` ahead of the training
        loop, bit-identically to serial training.  ``worker_pool`` shares
        an externally owned pool; otherwise the engine forks its own.
    """
    labels = np.asarray(labels)
    train_mask = np.asarray(train_mask, dtype=bool)
    val_mask = np.asarray(val_mask, dtype=bool)
    if not train_mask.any() or not val_mask.any():
        raise ValueError("train and validation masks must be non-empty")

    engine = MinibatchEngine(
        model,
        features,
        adjacency,
        fanouts=fanouts,
        batch_size=batch_size,
        replace=replace,
        cache_epochs=cache_epochs,
        lr=lr,
        weight_decay=weight_decay,
        eval_batch_size=eval_batch_size,
        num_workers=num_workers,
        prefetch_epochs=prefetch_epochs,
        worker_pool=worker_pool,
    )
    val_indices = np.where(val_mask)[0]

    def loss_fn(step: TrainStep):
        loss = binary_cross_entropy_with_logits(
            step.output, labels[step.batch].astype(np.float64)
        )
        if extra_loss is not None:
            loss = loss + extra_loss(step.output, step.batch)
        return loss

    return engine.run(
        np.where(train_mask)[0],
        epochs,
        loss_fn,
        rng,
        val_nodes=val_indices,
        val_labels=labels[val_indices],
        checkpoint="best",
        patience=patience,
    )
