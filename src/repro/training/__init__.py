"""Shared supervised-training loop used by Fairwos and every baseline."""

from repro.training.loop import FitHistory, fit_binary_classifier, predict_logits

__all__ = ["FitHistory", "fit_binary_classifier", "predict_logits"]
