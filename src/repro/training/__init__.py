"""Shared supervised-training loops used by Fairwos and every baseline.

``fit_binary_classifier`` is the paper's full-batch recipe;
``fit_minibatch`` is the neighbour-sampled large-graph equivalent with the
same early-stopping / best-model contract.  Both the sampled loops and
every method-specific variant (Fairwos fine-tune, FairRF, FairGKD) run on
``MinibatchEngine`` — methods register loss closures and epoch callbacks
instead of writing their own loop.
"""

from repro.training.engine import MinibatchEngine, TrainStep
from repro.training.loop import FitHistory, fit_binary_classifier, predict_logits
from repro.training.maintenance import IndexMaintainer, RefreshSchedule
from repro.training.minibatch import (
    DEFAULT_FANOUT,
    embed_batched,
    fit_minibatch,
    iter_minibatches,
    predict_logits_batched,
)
from repro.training.parallel import EpochPrefetcher, WorkerPool

__all__ = [
    "DEFAULT_FANOUT",
    "EpochPrefetcher",
    "FitHistory",
    "IndexMaintainer",
    "MinibatchEngine",
    "RefreshSchedule",
    "WorkerPool",
    "TrainStep",
    "embed_batched",
    "fit_binary_classifier",
    "predict_logits",
    "fit_minibatch",
    "iter_minibatches",
    "predict_logits_batched",
]
