"""Shared supervised-training loops used by Fairwos and every baseline.

``fit_binary_classifier`` is the paper's full-batch recipe;
``fit_minibatch`` is the neighbour-sampled large-graph equivalent with the
same early-stopping / best-model contract.
"""

from repro.training.loop import FitHistory, fit_binary_classifier, predict_logits
from repro.training.minibatch import (
    DEFAULT_FANOUT,
    embed_batched,
    fit_minibatch,
    iter_minibatches,
    predict_logits_batched,
)

__all__ = [
    "DEFAULT_FANOUT",
    "FitHistory",
    "embed_batched",
    "fit_binary_classifier",
    "predict_logits",
    "fit_minibatch",
    "iter_minibatches",
    "predict_logits_batched",
]
