"""Generic full-batch training loop for binary node classification.

Implements the paper's shared recipe: Adam (lr 0.001), full-batch epochs,
best-model selection by validation accuracy with optional early stopping
("we use early stop operation to preserve competitive utility performance").
Both the Fairwos pre-training stages and all baselines call into this, so
utility comparisons are apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.fairness.metrics import accuracy
from repro.nn import binary_cross_entropy_with_logits
from repro.nn.module import Module
from repro.optim import Adam
from repro.tensor import Tensor, no_grad

__all__ = ["FitHistory", "fit_binary_classifier", "predict_logits"]


@dataclass
class FitHistory:
    """Per-epoch training record; best-val state is restored on the model.

    ``epoch_train_seconds`` is filled by the minibatch engine only (one
    entry per epoch, covering sampling + forward/backward but not the
    validation pass) — the quantity the sampler-cache benchmarks gate on.
    """

    train_loss: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)
    best_val_accuracy: float = -1.0
    best_epoch: int = -1
    stopped_early: bool = False
    epoch_train_seconds: list[float] = field(default_factory=list)

    @property
    def epochs_run(self) -> int:
        """Number of completed epochs."""
        return len(self.train_loss)


def predict_logits(model: Module, features: Tensor, adjacency: sp.spmatrix) -> np.ndarray:
    """Inference-mode logits as a numpy array."""
    was_training = model.training
    model.eval()
    with no_grad():
        logits = model(features, adjacency).data.copy()
    model.train(was_training)
    return logits


def fit_binary_classifier(
    model: Module,
    features: Tensor,
    adjacency: sp.spmatrix,
    labels: np.ndarray,
    train_mask: np.ndarray,
    val_mask: np.ndarray,
    epochs: int,
    lr: float = 1e-3,
    weight_decay: float = 0.0,
    patience: int | None = None,
    extra_loss=None,
) -> FitHistory:
    """Train ``model`` and restore its best-validation-accuracy weights.

    Parameters
    ----------
    model:
        Any module with signature ``model(features, adjacency) -> logits``.
    features, adjacency, labels:
        Full-graph inputs; ``labels`` are 0/1 integers.
    train_mask, val_mask:
        Boolean node masks; loss is computed on train, selection on val.
    epochs:
        Maximum epoch count.
    lr, weight_decay:
        Adam hyper-parameters (paper defaults: 0.001, 0).
    patience:
        Stop after this many epochs without a validation improvement
        (None disables early stopping).
    extra_loss:
        Optional callable ``(logits) -> Tensor`` added to the BCE objective —
        the hook baselines use for their fairness regularisers.
    """
    labels = np.asarray(labels)
    train_mask = np.asarray(train_mask, dtype=bool)
    val_mask = np.asarray(val_mask, dtype=bool)
    if epochs < 1:
        raise ValueError(f"epochs must be >= 1, got {epochs}")
    if not train_mask.any() or not val_mask.any():
        raise ValueError("train and validation masks must be non-empty")

    optimizer = Adam(model.parameters(), lr=lr, weight_decay=weight_decay)
    history = FitHistory()
    best_state = model.state_dict()
    train_indices = np.where(train_mask)[0]
    train_labels = labels[train_indices].astype(np.float64)
    since_best = 0

    for epoch in range(epochs):
        model.train()
        optimizer.zero_grad()
        logits = model(features, adjacency)
        loss = binary_cross_entropy_with_logits(logits[train_indices], train_labels)
        if extra_loss is not None:
            loss = loss + extra_loss(logits)
        loss.backward()
        optimizer.step()

        val_logits = predict_logits(model, features, adjacency)[val_mask]
        val_acc = accuracy((val_logits > 0).astype(np.int64), labels[val_mask])
        history.train_loss.append(float(loss.data))
        history.val_accuracy.append(val_acc)

        if val_acc > history.best_val_accuracy:
            history.best_val_accuracy = val_acc
            history.best_epoch = epoch
            best_state = model.state_dict()
            since_best = 0
        else:
            since_best += 1
            if patience is not None and since_best > patience:
                history.stopped_early = True
                break

    model.load_state_dict(best_state)
    return history
