"""Amortised index maintenance for sampled training loops.

The Fairwos fine-tune keeps a counterfactual index that must be refreshed
as the representation space moves.  Before this module, the refresh
*schedule* lived twice — the full-batch path evaluated
``epoch % resolved_cf_refresh() == 0`` inside its epoch loop while the
sampled path hoisted the cadence into a closure — and the cache
invalidation that must accompany every refresh was hand-rolled in the
trainer.  Two pieces own that now:

* :class:`RefreshSchedule` — the single predicate deciding which epochs
  refresh (epoch 0 or any multiple of the period, plus "not initialised
  yet"), shared by both fine-tune paths so they cannot drift;
* :class:`IndexMaintainer` — an engine ``on_epoch_start`` callback that
  runs a refresh callable on the schedule and invalidates the engine's
  sampling cache afterwards (cached seed sets must never point at stale
  index targets).

The maintainer is deliberately index-agnostic: it holds a ``refresh_fn``
closure, not a :class:`~repro.core.counterfactual.CounterfactualSearch`,
so the training layer stays below the core layer.  Whether a refresh
rebuilds the ANN forest from scratch or applies an incremental
:meth:`~repro.core.ann.RPForestIndex.update` is the backend's business
(``cf_update`` on :class:`~repro.core.config.FairwosConfig`).
"""

from __future__ import annotations

from typing import Callable

__all__ = ["IndexMaintainer", "RefreshSchedule"]


class RefreshSchedule:
    """Periodic refresh predicate shared by every fine-tune path.

    ``due(epoch, initialized)`` is True on every ``period``-th epoch
    (counting from 0) and always True while the index has never been
    built — exactly the ``cf_index is None or epoch % refresh == 0``
    condition both trainer paths used to spell out independently.
    """

    def __init__(self, period: int) -> None:
        if period < 1:
            raise ValueError(f"refresh period must be >= 1, got {period}")
        self.period = int(period)

    def due(self, epoch: int, initialized: bool = True) -> bool:
        """Whether ``epoch`` should refresh the index."""
        return not initialized or epoch % self.period == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RefreshSchedule(period={self.period})"


class IndexMaintainer:
    """Engine ``on_epoch_start`` callback owning index-refresh bookkeeping.

    Parameters
    ----------
    refresh_fn:
        ``(epoch) -> None`` performing the actual refresh (embedding the
        nodes and rebuilding/updating the index).  Run on epoch 0 and then
        every ``period`` epochs.
    period:
        Refresh cadence in epochs (``resolved_cf_refresh()`` for Fairwos).
    engine:
        Optional :class:`~repro.training.engine.MinibatchEngine`; its
        sampling cache is invalidated after every refresh so replayed seed
        sets never reference targets of a stale index.

    The maintainer is callable so it can be registered directly::

        maintainer = IndexMaintainer(refresh, config.resolved_cf_refresh(),
                                     engine=engine)
        engine.run(..., on_epoch_start=maintainer)

    ``refreshes`` counts completed refreshes (useful for amortisation
    diagnostics and tests).
    """

    def __init__(
        self,
        refresh_fn: Callable[[int], None],
        period: int,
        engine=None,
    ) -> None:
        self.schedule = RefreshSchedule(period)
        self.refresh_fn = refresh_fn
        self.engine = engine
        self.refreshes = 0

    @property
    def initialized(self) -> bool:
        """Whether at least one refresh has completed."""
        return self.refreshes > 0

    def __call__(self, epoch: int) -> bool:
        """Refresh if due; returns whether a refresh ran."""
        if not self.schedule.due(epoch, self.initialized):
            return False
        self.refresh_fn(epoch)
        self.refreshes += 1
        if self.engine is not None:
            self.engine.invalidate_cache()
        return True
