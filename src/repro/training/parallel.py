"""Multiprocess sampler workers with double-buffered epoch prefetch.

The serial :class:`~repro.training.engine.MinibatchEngine` spends most of a
sampled epoch's wall-time in numpy block assembly — work that is pure given
the graph and the random draws.  This module splits one training process
into three cooperating layers:

* :class:`WorkerPool` — ``num_workers`` forked processes attached to the
  graph's CSR arrays through ``multiprocessing.shared_memory`` (published
  once, zero copies per task).  Workers execute order-tagged jobs — block
  assembly from pre-drawn edge keys, and per-tree RP-forest build/re-route
  — and the pool reorders results, detects dead workers, and falls back to
  in-process execution with a :class:`RuntimeWarning` when one crashes.
* :class:`EpochPrefetcher` — a producer thread in the *main* process that
  records epoch ``E+1``'s step sequence (shuffle, seed extension, edge-key
  draws) while the trainer runs epoch ``E``, fanning the heavy block
  assembly out to the pool.  Double buffering: ``prefetch_epochs`` finished
  epochs may sit ready ahead of the consumer.
* The engine's serial loop, unchanged — ``num_workers=0`` never touches
  this module.

Determinism contract
--------------------
Parallel training is bit-identical to serial training because randomness
never leaves the main process:

1. All generator consumption of a serial epoch happens in
   ``MinibatchEngine._fresh_steps`` — shuffle, ``seed_fn`` draws, then one
   :meth:`~repro.graph.sampling.NeighborSampler.draw_edge_keys` payload per
   layer.  The producer replays exactly that sequence on a *clone* of the
   engine generator, so the draws (and their order) are identical.
2. Workers receive ``(seeds, fanouts, keys)`` and run the deterministic
   :meth:`~repro.graph.sampling.NeighborSampler.sample_block_with_keys`
   half — any process, any order, same block.
3. ``close(rng)`` writes the clone's state after the last *delivered*
   epoch back into the engine generator — exactly the state serial
   training would have left it in (replayed cache epochs consume nothing).
4. :meth:`EpochPrefetcher.invalidate` discards speculative epochs staged
   before a consumer-visible change (e.g. a counterfactual-index refresh)
   and rewinds the clone to the end of the last delivered epoch — the same
   state a serial engine would freshly sample from after its cache
   invalidation.

The fan-out path applies to depth-1 samplers (the paper's operating
point): deeper chains need layer ``k``'s sources before layer ``k+1``'s
keys can be drawn, so multi-layer epochs are staged whole in the producer
thread (still overlapped with training, not sharded across workers).

One caveat: the contract assumes the engine generator is consumed only by
the sampling stream during ``run()`` (true for every engine consumer in
this repo; a model with ``dropout > 0`` would also draw from it per
forward pass and break bit-parity — dropout defaults to 0).
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_lib
import threading
import traceback
import warnings
from collections import deque
from typing import Callable, Sequence

import numpy as np

from repro.graph.sampling import NeighborSampler
from repro.training.engine import iter_minibatches

__all__ = ["EpochPrefetcher", "WorkerPool"]

_RESULT_POLL_SECONDS = 1.0


# --------------------------------------------------------------------- #
# shared-memory publication
# --------------------------------------------------------------------- #
def _publish_array(array: np.ndarray):
    """Copy ``array`` into a fresh SharedMemory segment.

    Returns ``(shm, spec, view)``: the owning handle, the picklable
    ``(name, shape, dtype)`` spec workers attach with, and the main-process
    view over the segment.
    """
    from multiprocessing import shared_memory

    array = np.ascontiguousarray(array)
    shm = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
    view[...] = array
    return shm, (shm.name, array.shape, array.dtype.str), view


def _attach_array(spec):
    """Attach to a published segment; returns ``(shm, view)``.

    Only the owning (main) process ever unlinks: forked workers share the
    parent's resource tracker, so attaching here must not touch tracker
    registrations (an attach-side unregister would strip the creator's
    entry and break the shutdown unlink).
    """
    from multiprocessing import shared_memory

    name, shape, dtype = spec
    shm = shared_memory.SharedMemory(name=name)
    return shm, np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)


# --------------------------------------------------------------------- #
# task execution (same code path in workers and in the crash fallback)
# --------------------------------------------------------------------- #
def _execute_task(task, csr, local_views=None):
    """Run one pool task; pure given its inputs.

    ``csr`` is the pool's ``(indptr, indices, degrees)`` triple (``None``
    for forest-only pools); ``local_views`` maps shared-segment names to
    main-process views so the in-process fallback never re-attaches.
    """
    kind = task[0]
    if kind == "blocks":
        _, seeds, fanouts, replace, keys_list = task
        if csr is None:
            raise RuntimeError("pool was created without graph CSR arrays")
        indptr, indices, degrees = csr
        sampler = NeighborSampler.from_csr_arrays(
            indptr, indices, degrees, indptr.shape[0] - 1, fanouts, replace
        )
        return sampler.sample_blocks_with_keys(seeds, keys_list)
    if kind in ("tree_build", "tree_reroute"):
        from repro.core.ann import execute_tree_task

        x_spec = task[2]
        if local_views is not None and x_spec[0] in local_views:
            return execute_tree_task(task, local_views[x_spec[0]])
        shm, X = _attach_array(x_spec)
        try:
            return execute_tree_task(task, X)
        finally:
            shm.close()
    raise ValueError(f"unknown pool task kind {kind!r}")


def _worker_main(task_queue, result_queue, csr_specs):
    """Worker loop: attach shared CSR once, then drain order-tagged tasks."""
    shms = []
    csr = None
    if csr_specs is not None:
        arrays = []
        for spec in csr_specs:
            shm, view = _attach_array(spec)
            shms.append(shm)
            arrays.append(view)
        csr = tuple(arrays)
    try:
        while True:
            item = task_queue.get()
            if item is None:
                break
            job_id, task = item
            try:
                result_queue.put((job_id, True, _execute_task(task, csr)))
            except BaseException as exc:
                result_queue.put(
                    (job_id, False, f"{exc}\n{traceback.format_exc()}")
                )
    finally:
        for shm in shms:
            shm.close()


class WorkerPool:
    """Forked sampler workers over shared-memory graph CSR.

    Parameters
    ----------
    num_workers:
        Worker processes to fork (>= 1).
    adjacency:
        Optional graph adjacency.  When given, its CSR arrays (``indptr``,
        ``indices``, ``degrees`` — exactly the dtypes a
        :class:`~repro.graph.sampling.NeighborSampler` over the same matrix
        holds) are published to shared memory once, and workers can execute
        ``"blocks"`` tasks against them.  Without it the pool only runs
        forest tasks.

    Tasks go through a shared queue (dynamic load balancing) tagged with
    their position; :meth:`run_jobs` reorders results, so callers always
    see positional results regardless of scheduling.  If a worker dies
    mid-batch the pool warns (:class:`RuntimeWarning`), terminates the
    remaining workers, and completes every unfinished task in-process —
    bit-identical output, because tasks are pure and their random payloads
    were drawn by the caller.

    The pool is thread-safe: concurrent :meth:`run_jobs` calls (e.g. the
    epoch producer and a main-thread forest refresh) serialize on an
    internal lock.  Use as a context manager or call :meth:`shutdown`.
    """

    def __init__(self, num_workers: int, adjacency=None) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = int(num_workers)
        methods = mp.get_all_start_methods()
        self._ctx = mp.get_context("fork" if "fork" in methods else "spawn")
        self._lock = threading.Lock()
        self._segments = []  # owned SharedMemory handles, unlinked on shutdown
        self._local_views: dict[str, np.ndarray] = {}
        self._csr = None
        self._source_indptr = None
        csr_specs = None
        if adjacency is not None:
            import scipy.sparse as sp

            matrix = sp.csr_matrix(adjacency)
            self._source_indptr = matrix.indptr
            indptr = matrix.indptr
            indices = matrix.indices.astype(np.int64, copy=False)
            degrees = np.diff(matrix.indptr).astype(np.int64)
            csr_specs = []
            views = []
            for array in (indptr, indices, degrees):
                shm, spec, view = _publish_array(array)
                self._segments.append(shm)
                self._local_views[spec[0]] = view
                csr_specs.append(spec)
                views.append(view)
            self._csr = tuple(views)
        self._task_queue = self._ctx.Queue()
        self._result_queue = self._ctx.Queue()
        self._workers = [
            self._ctx.Process(
                target=_worker_main,
                args=(self._task_queue, self._result_queue, csr_specs),
                daemon=True,
            )
            for _ in range(self.num_workers)
        ]
        for proc in self._workers:
            proc.start()
        self._alive = True
        self._closed = False

    # ------------------------------------------------------------------ #
    def matches_sampler(self, sampler: NeighborSampler) -> bool:
        """Whether ``sampler`` samples the adjacency this pool published.

        Identity-based: every sampler built over the same CSR matrix object
        shares its ``indptr`` array, so a shared pool handed to an engine
        over a *different* graph is caught before it returns wrong blocks.
        """
        return (
            self._source_indptr is not None
            and sampler.csr_arrays()[0] is self._source_indptr
        )

    @property
    def healthy(self) -> bool:
        """False once a worker crash demoted the pool to in-process mode."""
        return self._alive

    # ------------------------------------------------------------------ #
    def publish(self, array: np.ndarray):
        """Publish a temporary array; returns its spec (freed on release).

        Used per forest build/update call to ship the point matrix once
        instead of once per tree task.  Call :meth:`release` afterwards.
        """
        shm, spec, view = _publish_array(array)
        self._segments.append(shm)
        self._local_views[spec[0]] = view
        return spec

    def release(self, spec) -> None:
        """Unlink a :meth:`publish`'d segment."""
        name = spec[0]
        self._local_views.pop(name, None)
        for shm in list(self._segments):
            if shm.name == name:
                self._segments.remove(shm)
                self._close_segment(shm)

    # ------------------------------------------------------------------ #
    def run_jobs(self, tasks: Sequence[tuple]) -> list:
        """Execute ``tasks``; results in task order.

        A task raising inside a worker re-raises here (with the worker
        traceback) after the batch drains; a worker *dying* triggers the
        in-process fallback for everything unfinished.
        """
        with self._lock:
            if not self._alive:
                return [self._run_local(task) for task in tasks]
            results = [None] * len(tasks)
            pending = set(range(len(tasks)))
            for job_id, task in enumerate(tasks):
                self._task_queue.put((job_id, task))
            failure = None
            while pending:
                try:
                    job_id, ok, payload = self._result_queue.get(
                        timeout=_RESULT_POLL_SECONDS
                    )
                except queue_lib.Empty:
                    if all(proc.is_alive() for proc in self._workers):
                        continue
                    warnings.warn(
                        "a sampler worker process died; completing this "
                        "batch in-process and disabling the worker pool",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    self._abort()
                    for job_id, ok, payload in self._drain_results():
                        if job_id in pending and ok:
                            results[job_id] = payload
                            pending.discard(job_id)
                    for job_id in sorted(pending):
                        results[job_id] = self._run_local(tasks[job_id])
                    pending.clear()
                    break
                if ok:
                    results[job_id] = payload
                elif failure is None:
                    failure = payload
                pending.discard(job_id)
            if failure is not None:
                raise RuntimeError(f"pool task failed in worker:\n{failure}")
            return results

    def _run_local(self, task):
        return _execute_task(task, self._csr, self._local_views)

    def _drain_results(self):
        """Collect whatever finished results are still queued (non-blocking)."""
        items = []
        while True:
            try:
                items.append(self._result_queue.get_nowait())
            except queue_lib.Empty:
                return items

    def _abort(self) -> None:
        """Terminate all workers after a crash; the pool goes in-process."""
        self._alive = False
        for proc in self._workers:
            if proc.is_alive():
                proc.terminate()
        for proc in self._workers:
            proc.join(timeout=5.0)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _close_segment(shm) -> None:
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def shutdown(self) -> None:
        """Stop workers and free every shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        with self._lock:
            if self._alive:
                self._alive = False
                for _ in self._workers:
                    self._task_queue.put(None)
                for proc in self._workers:
                    proc.join(timeout=5.0)
                for proc in self._workers:
                    if proc.is_alive():  # pragma: no cover - stuck worker
                        proc.terminate()
                        proc.join(timeout=5.0)
            self._task_queue.close()
            self._result_queue.close()
            for shm in self._segments:
                self._close_segment(shm)
            self._segments = []
            self._local_views = {}

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.shutdown()
        except Exception:
            pass


# --------------------------------------------------------------------- #
# epoch prefetcher
# --------------------------------------------------------------------- #
class EpochPrefetcher:
    """Stage fresh epochs ahead of the training loop, bit-identically.

    The producer thread replays ``MinibatchEngine._fresh_steps``'s exact
    generator consumption on a clone of the engine rng: permutation, per
    batch the optional ``seed_fn`` draws, then one ``draw_edge_keys``
    payload per layer.  Depth-1 block assembly fans out to ``pool``; the
    assembled ``(batch, seeds, payload, blocks)`` lists buffer up to
    ``prefetch_epochs`` epochs ahead.

    ``prefetch_epochs=0`` runs synchronously inside :meth:`next_epoch`
    (pool fan-out without speculation — useful when warnings or errors must
    surface deterministically in the calling thread).

    :meth:`invalidate` makes speculation safe next to epoch-cache
    invalidation: staged-but-undelivered epochs are discarded and the clone
    rewinds to the end of the last delivered epoch, so the next delivery is
    exactly the epoch a serial engine would sample after the same
    invalidation.  :meth:`close` joins the producer and (optionally) syncs
    the engine rng to the post-last-delivered-epoch state.
    """

    def __init__(
        self,
        sampler: NeighborSampler,
        nodes: np.ndarray,
        batch_size: int,
        rng: np.random.Generator,
        pool: WorkerPool,
        *,
        seed_fn: Callable | None = None,
        sort_batches: bool = False,
        prefetch_epochs: int = 1,
    ) -> None:
        if prefetch_epochs < 0:
            raise ValueError(
                f"prefetch_epochs must be >= 0, got {prefetch_epochs}"
            )
        self._sampler = sampler
        self._nodes = nodes
        self._batch_size = batch_size
        self._pool = pool
        self._seed_fn = seed_fn
        self._sort_batches = sort_batches
        self._prefetch_epochs = prefetch_epochs
        self._local = np.random.default_rng()
        self._local.bit_generator.state = rng.bit_generator.state
        self._resume_state = rng.bit_generator.state
        self._rewind_pending = False
        self._generation = 0
        self._buffer: deque = deque()  # staged (steps, end_state) pairs
        self._error: tuple[int, BaseException] | None = None
        self._closed = False
        self._cond = threading.Condition()
        self._thread: threading.Thread | None = None
        if prefetch_epochs > 0:
            self._thread = threading.Thread(
                target=self._producer, name="epoch-prefetcher", daemon=True
            )
            self._thread.start()

    # ------------------------------------------------------------------ #
    def _produce_epoch(self) -> tuple[list, dict]:
        """Stage one epoch's draws and assemble its blocks via the pool."""
        local = self._local
        depth1 = self._sampler.num_layers == 1
        staged = []  # (batch, seeds, payload, task-or-blocks)
        for batch in iter_minibatches(self._nodes, self._batch_size, local):
            if self._sort_batches:
                batch = np.sort(batch)
            if self._seed_fn is not None:
                seeds, payload = self._seed_fn(batch, local)
            else:
                seeds, payload = batch, None
            if depth1:
                valid = self._sampler._validated_seeds(seeds)
                keys = self._sampler.draw_edge_keys(
                    valid, self._sampler.fanouts[0], local
                )
                task = (
                    "blocks",
                    valid,
                    self._sampler.fanouts,
                    self._sampler.replace,
                    [keys],
                )
                staged.append((batch, seeds, payload, task))
            else:
                # Deeper chains: layer k+1's key sizes depend on layer k's
                # sources, so the whole chain is built here (overlapped
                # with training, not sharded).
                blocks = self._sampler.sample_blocks(seeds, local)
                staged.append((batch, seeds, payload, blocks))
        end_state = local.bit_generator.state
        if depth1:
            blocks_list = self._pool.run_jobs([item[3] for item in staged])
            steps = [
                (batch, seeds, payload, blocks)
                for (batch, seeds, payload, _), blocks in zip(
                    staged, blocks_list
                )
            ]
        else:
            steps = staged
        return steps, end_state

    def _producer(self) -> None:
        while True:
            with self._cond:
                while not self._closed and (
                    len(self._buffer) >= self._prefetch_epochs
                    or self._error is not None
                ):
                    self._cond.wait()
                if self._closed:
                    return
                if self._rewind_pending:
                    self._local.bit_generator.state = self._resume_state
                    self._rewind_pending = False
                generation = self._generation
            try:
                produced = self._produce_epoch()
            except BaseException as exc:  # surfaced via next_epoch
                with self._cond:
                    if generation == self._generation:
                        self._error = (generation, exc)
                        self._cond.notify_all()
                continue
            with self._cond:
                if generation == self._generation:
                    self._buffer.append(produced)
                    self._cond.notify_all()
                # else: staled mid-production; invalidate() already queued
                # the rewind, so the speculative epoch is simply dropped.

    # ------------------------------------------------------------------ #
    def next_epoch(self) -> list:
        """The next fresh epoch's ``(batch, seeds, payload, blocks)`` steps."""
        with self._cond:
            if self._closed:
                raise RuntimeError("prefetcher is closed")
            if self._thread is None:
                if self._rewind_pending:
                    self._local.bit_generator.state = self._resume_state
                    self._rewind_pending = False
                steps, end_state = self._produce_epoch()
                self._resume_state = end_state
                return steps
            while True:
                if self._buffer:
                    steps, end_state = self._buffer.popleft()
                    self._resume_state = end_state
                    self._cond.notify_all()
                    return steps
                if (
                    self._error is not None
                    and self._error[0] == self._generation
                ):
                    exc = self._error[1]
                    raise exc
                self._cond.wait()

    def invalidate(self) -> None:
        """Discard staged epochs; resume from the last delivered state."""
        with self._cond:
            self._generation += 1
            self._buffer.clear()
            self._error = None
            self._rewind_pending = True
            self._cond.notify_all()

    def close(self, rng: np.random.Generator | None = None) -> None:
        """Stop the producer; sync ``rng`` to the post-delivery state."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None
        if rng is not None:
            rng.bit_generator.state = self._resume_state
