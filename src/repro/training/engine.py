"""Unified neighbour-sampled training engine.

Before this module, four training loops re-implemented the same sampled
skeleton — :func:`~repro.training.minibatch.fit_minibatch`, the Fairwos
fine-tune, FairRF's sampled epochs and FairGKD's distillation epochs each
carried their own copy of batch iteration, neighbour sampling, validation,
best-model/val-floor checkpointing and early stopping.
:class:`MinibatchEngine` owns that skeleton once:

* **batch iteration over an arbitrary node set** — the training nodes
  (plain supervised fitting) or *all* nodes (methods whose fairness terms
  are evaluated on unlabelled nodes too), optionally sorted per batch for
  deterministic within-batch summation;
* **seed extension** — a per-batch hook that grows the sampled seed set
  beyond the iterated batch (Fairwos adds each batch's counterfactual
  targets so the fair loss reaches both sides of every pair);
* **per-step loss closures** — the method provides a callable from a
  :class:`TrainStep` (batch, seeds, blocks, model output) to a loss
  ``Tensor``; the engine handles zero_grad/forward/backward/step;
* **per-epoch callbacks** — ``on_epoch_start`` (λ refreshes,
  counterfactual-index rebuilds, cache invalidation) and ``on_epoch_end``
  (closed-form weight updates, history logging);
* **the checkpoint contract** — ``checkpoint="best"`` restores the
  best-validation-accuracy state with optional patience (the
  :func:`~repro.training.loop.fit_binary_classifier` recipe), and
  ``checkpoint="floor"`` aborts when validation accuracy falls more than
  ``val_tolerance`` below its pre-training level, restoring the last state
  above the floor (the Fairwos fine-tune recipe);
* **a per-fit eval-block cache** — the exact validation pass folds full
  (un-sampled) neighbourhoods that depend only on the fixed graph and val
  split, so their block chains are built once per :meth:`MinibatchEngine.run`
  and replayed every epoch (bit-identical metrics, the per-epoch sampling
  constant gone);
* **epoch-cached sampling** — with ``cache_epochs=R`` the engine records
  one epoch's batches/seeds/blocks through
  :class:`~repro.graph.sampling.EpochBlockCache` and replays them for the
  next ``R - 1`` epochs, eliminating the per-batch numpy sampling overhead
  that dominates sampled-epoch wall-time (see the cache's RNG-stream
  contract; the default ``R=1`` is bit-identical to uncached training).

The module also hosts the shared batched-inference helpers
(:func:`predict_logits_batched`, :func:`embed_batched`) and
:func:`iter_minibatches`; :mod:`repro.training.minibatch` re-exports them
and builds :func:`~repro.training.minibatch.fit_minibatch` on the engine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

import numpy as np
import scipy.sparse as sp

from repro.fairness.metrics import accuracy
from repro.graph.sampling import Block, EpochBlockCache, NeighborSampler
from repro.nn.module import Module
from repro.optim import Adam
from repro.tensor import Tensor, get_default_dtype, no_grad
from repro.training.loop import FitHistory

__all__ = [
    "DEFAULT_FANOUT",
    "MinibatchEngine",
    "TrainStep",
    "embed_batched",
    "iter_minibatches",
    "predict_logits_batched",
]

# Per-layer neighbour fanout used whenever the caller does not specify one
# (shared by the engine, fit_minibatch, FairwosConfig and the CLI display).
DEFAULT_FANOUT = 10


def iter_minibatches(
    indices: np.ndarray,
    batch_size: int,
    rng: np.random.Generator | None = None,
) -> Iterator[np.ndarray]:
    """Yield ``indices`` in batches of ``batch_size`` (shuffled when ``rng``)."""
    indices = np.asarray(indices, dtype=np.int64).reshape(-1)
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if rng is not None:
        indices = rng.permutation(indices)
    for start in range(0, indices.size, batch_size):
        yield indices[start : start + batch_size]


def _as_feature_array(features) -> np.ndarray:
    """Accept a numpy array or constant Tensor of node features.

    Floating arrays pass through untouched — crucially this keeps
    memory-mapped float32 feature matrices on disk instead of materialising
    an in-RAM float64 copy; each batch's gathered rows are cast to the
    active default dtype when wrapped in a :class:`Tensor`.  Non-float
    inputs (e.g. integer one-hots) are promoted to float64 once.
    """
    if isinstance(features, Tensor):
        return features.data
    features = np.asarray(features)
    if not np.issubdtype(features.dtype, np.floating):
        features = features.astype(np.float64)
    return features


def _resolve_num_layers(model: Module, num_layers: int | None) -> int:
    layers = num_layers if num_layers is not None else getattr(model, "num_layers", None)
    if layers is None:
        raise ValueError(
            "model exposes no num_layers attribute; pass num_layers explicitly"
        )
    return int(layers)


def predict_logits_batched(
    model: Module,
    features,
    adjacency: sp.spmatrix,
    nodes: np.ndarray | None = None,
    batch_size: int = 1024,
    num_layers: int | None = None,
    sampler: NeighborSampler | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Inference-mode logits computed one seed batch at a time.

    By default each batch folds its exact L-hop neighbourhood (fanout
    ``None``), so the result matches full-batch ``predict_logits`` while
    keeping memory bounded by the batch's receptive field.  Pass a custom
    ``sampler`` to trade exactness for speed on very dense graphs.

    Parameters
    ----------
    model:
        A block-capable model (``model(features, blocks) -> logits``).
    features:
        ``(N, F)`` numpy array or Tensor of all node features.
    adjacency:
        Full-graph CSR adjacency.
    nodes:
        Seed node ids to score (default: all nodes, in order).
    batch_size:
        Seeds per inference batch.
    num_layers:
        Number of message-passing layers (default: ``model.num_layers``).
    sampler:
        Optional pre-built sampler overriding the exact full-neighbourhood
        default (its ``num_layers`` must match the model).
    rng:
        Only needed when ``sampler`` actually samples.
    """
    feature_array = _as_feature_array(features)
    if sampler is None:
        sampler = NeighborSampler.full_neighborhood(
            adjacency, _resolve_num_layers(model, num_layers)
        )
    if nodes is None:
        nodes = np.arange(sampler.num_nodes)
    nodes = np.asarray(nodes, dtype=np.int64).reshape(-1)
    if rng is None:
        # Fresh entropy: a custom *sampling* sampler without an explicit rng
        # must not silently return identical draws on every call.  The exact
        # full-neighbourhood default never consumes the generator.
        rng = np.random.default_rng()

    logits = np.empty(nodes.size, dtype=get_default_dtype())
    was_training = model.training
    model.eval()
    with no_grad():
        filled = 0
        for batch in iter_minibatches(nodes, batch_size):
            blocks = sampler.sample_blocks(batch, rng)
            batch_features = Tensor(feature_array[blocks[0].src_nodes])
            logits[filled : filled + batch.size] = model(batch_features, blocks).data
            filled += batch.size
    model.train(was_training)
    return logits


def embed_batched(
    model: Module,
    features,
    adjacency: sp.spmatrix,
    nodes: np.ndarray | None = None,
    batch_size: int = 1024,
    num_layers: int | None = None,
    sampler: NeighborSampler | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Inference-mode node representations, one seed batch at a time.

    The representation-space analogue of :func:`predict_logits_batched`:
    folds each batch's exact L-hop neighbourhood through ``model.embed_blocks``
    so the output matches full-batch ``model.embed`` while only one batch's
    computation graph is live.  Used by the sampled fine-tune phase to
    refresh the counterfactual index without a full-graph forward pass.

    Returns an ``(len(nodes), hidden)`` array in the active default dtype.
    """
    feature_array = _as_feature_array(features)
    if sampler is None:
        sampler = NeighborSampler.full_neighborhood(
            adjacency, _resolve_num_layers(model, num_layers)
        )
    if nodes is None:
        nodes = np.arange(sampler.num_nodes)
    nodes = np.asarray(nodes, dtype=np.int64).reshape(-1)
    if nodes.size == 0:
        # The embedding width is unknown without a forward pass, so an
        # empty request has no well-defined result shape.
        raise ValueError("nodes must be non-empty")
    if rng is None:
        # Matches predict_logits_batched: the exact full-neighbourhood
        # default never consumes the generator; a custom sampling sampler
        # without an explicit rng must not repeat identical draws.
        rng = np.random.default_rng()

    out: np.ndarray | None = None
    was_training = model.training
    model.eval()
    with no_grad():
        filled = 0
        for batch in iter_minibatches(nodes, batch_size):
            blocks = sampler.sample_blocks(batch, rng)
            batch_features = Tensor(feature_array[blocks[0].src_nodes])
            h = model.embed_blocks(batch_features, blocks).data
            if out is None:
                out = np.empty((nodes.size, h.shape[1]), dtype=h.dtype)
            out[filled : filled + batch.size] = h
            filled += batch.size
    model.train(was_training)
    return out


@dataclass
class TrainStep:
    """Everything one optimisation step exposes to a loss closure.

    ``output`` is the model's forward result over the step's block chain —
    per-seed logits in ``forward="logits"`` mode, per-seed representations
    in ``forward="embed"`` mode; its rows correspond to ``seeds`` in order.
    ``batch`` is the iterated node batch; ``seeds`` equals ``batch`` unless
    a ``seed_fn`` extended it; ``payload`` carries whatever the ``seed_fn``
    returned alongside (e.g. a sampled attribute subset).
    """

    epoch: int
    batch: np.ndarray
    seeds: np.ndarray
    blocks: list[Block]
    output: Tensor
    payload: Any = None

    def local_index(self, nodes: np.ndarray) -> np.ndarray:
        """Positions of global ``nodes`` within ``seeds``.

        Valid when ``seeds`` is sorted — always true with a seed extension
        (extensions are built with ``np.unique``) or ``sort_batches=True``.
        """
        return np.searchsorted(self.seeds, nodes)


class MinibatchEngine:
    """Shared skeleton for neighbour-sampled training loops.

    Parameters
    ----------
    model:
        Block-capable model (any :class:`~repro.gnnzoo.base.GNNBackbone`).
    features:
        ``(N, F)`` numpy array or Tensor; rows are gathered per batch.
    adjacency:
        Full-graph CSR adjacency.
    fanouts:
        Per-layer neighbour fanouts, input layer first (default:
        ``DEFAULT_FANOUT`` per model layer).  Entries may be ``None`` to
        keep full neighbourhoods.
    batch_size:
        Seed nodes per training step.
    num_layers:
        Message-passing depth (default: ``model.num_layers``).
    replace:
        Sample neighbours with replacement.
    cache_epochs:
        Epoch-level sampling cache window (see
        :class:`~repro.graph.sampling.EpochBlockCache`): sampled structure
        is refreshed every ``cache_epochs`` epochs and replayed in between.
        The default ``1`` samples freshly every epoch (bit-identical to the
        pre-engine loops).
    optimizer:
        Optimiser instance driving the parameter updates (default:
        ``Adam(model.parameters(), lr, weight_decay)``).  Pass one
        explicitly when extra modules train jointly (FairGKD's projection).
    lr, weight_decay:
        Used only to build the default optimiser.
    eval_batch_size:
        Batch size for the exact validation/prediction passes (default:
        ``batch_size``).
    num_workers:
        Sampler worker processes (see :mod:`repro.training.parallel`).
        ``0`` (the default) is the serial engine, byte-identical to the
        pre-parallel code path; ``> 0`` samples fresh epochs through a
        shared-memory :class:`~repro.training.parallel.WorkerPool` with
        results bit-identical to serial training.
    prefetch_epochs:
        Fresh epochs the parallel sampler may stage ahead of training
        (``0`` = synchronous fan-out, no speculation).  Ignored when
        ``num_workers == 0``.
    worker_pool:
        Optional externally owned pool shared across phases (the Fairwos
        trainer reuses one pool for every engine and the counterfactual
        forest).  Must have been built over this engine's adjacency; the
        engine creates and owns a private pool per :meth:`run` otherwise.

    Examples
    --------
    A method registers a loss closure and (optionally) epoch callbacks
    instead of writing a loop::

        engine = MinibatchEngine(model, graph.features, graph.adjacency,
                                 fanouts=(10, 5), batch_size=512)

        def loss_fn(step):
            return binary_cross_entropy_with_logits(
                step.output, labels[step.batch].astype(np.float64))

        history = engine.run(train_nodes, epochs=100, loss_fn=loss_fn,
                             rng=rng, val_nodes=val_nodes,
                             val_labels=labels[val_nodes], patience=20)
        logits = engine.predict()
    """

    def __init__(
        self,
        model: Module,
        features,
        adjacency: sp.spmatrix,
        *,
        fanouts: Sequence[int | None] | None = None,
        batch_size: int = 512,
        num_layers: int | None = None,
        replace: bool = False,
        cache_epochs: int = 1,
        optimizer=None,
        lr: float = 1e-3,
        weight_decay: float = 0.0,
        eval_batch_size: int | None = None,
        num_workers: int = 0,
        prefetch_epochs: int = 1,
        worker_pool=None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if num_workers < 0:
            raise ValueError(f"num_workers must be >= 0, got {num_workers}")
        if prefetch_epochs < 0:
            raise ValueError(
                f"prefetch_epochs must be >= 0, got {prefetch_epochs}"
            )
        if eval_batch_size is not None and eval_batch_size < 1:
            # Explicit is-None resolution: a non-positive eval batch must be
            # rejected, never silently collapsed into "follow batch_size"
            # (the falsy-zero bug class).
            raise ValueError(
                f"eval_batch_size must be >= 1 or None, got {eval_batch_size}"
            )
        self.model = model
        self.feature_array = _as_feature_array(features)
        self.adjacency = adjacency
        depth = _resolve_num_layers(model, num_layers)
        if fanouts is None:
            fanouts = (DEFAULT_FANOUT,) * depth
        self.sampler = NeighborSampler(adjacency, fanouts, replace=replace)
        if self.sampler.num_layers != depth:
            raise ValueError(
                f"got {self.sampler.num_layers} fanouts for a {depth}-layer model"
            )
        self.eval_sampler = NeighborSampler.full_neighborhood(adjacency, depth)
        self.batch_size = batch_size
        self.eval_batch_size = (
            batch_size if eval_batch_size is None else eval_batch_size
        )
        self.cache_epochs = int(cache_epochs)
        if self.cache_epochs < 1:
            raise ValueError(f"cache_epochs must be >= 1, got {cache_epochs}")
        self.optimizer = optimizer if optimizer is not None else Adam(
            model.parameters(), lr=lr, weight_decay=weight_decay
        )
        self.num_workers = int(num_workers)
        self.prefetch_epochs = int(prefetch_epochs)
        self._shared_pool = worker_pool
        self._active_cache: EpochBlockCache | None = None
        self._active_prefetcher = None

    # ------------------------------------------------------------------ #
    def predict(
        self, nodes: np.ndarray | None = None, batch_size: int | None = None
    ) -> np.ndarray:
        """Exact (full-neighbourhood) batched logits for ``nodes``."""
        return predict_logits_batched(
            self.model,
            self.feature_array,
            self.adjacency,
            nodes=nodes,
            batch_size=(
                self.eval_batch_size if batch_size is None else batch_size
            ),
            sampler=self.eval_sampler,
        )

    def invalidate_cache(self) -> None:
        """Force the next epoch to resample even inside a cache window.

        Consumers whose seed extensions bake external state into the cached
        structure call this when that state changes (Fairwos invalidates on
        every counterfactual-index refresh so cached seed sets never point
        at stale counterfactual targets).  An active parallel prefetcher
        discards its speculatively staged epochs at the same time — they
        were sampled against the state that just went stale.
        """
        if self._active_cache is not None:
            self._active_cache.invalidate()
        if self._active_prefetcher is not None:
            self._active_prefetcher.invalidate()

    # ------------------------------------------------------------------ #
    def run(
        self,
        nodes: np.ndarray,
        epochs: int,
        loss_fn: Callable[[TrainStep], Tensor],
        rng: np.random.Generator | int | None = None,
        *,
        val_nodes: np.ndarray,
        val_labels: np.ndarray,
        checkpoint: str = "best",
        patience: int | None = None,
        val_tolerance: float | None = None,
        forward: str = "logits",
        seed_fn: Callable | None = None,
        sort_batches: bool = False,
        on_epoch_start: Callable[[int], None] | None = None,
        on_epoch_end: Callable[[int], None] | None = None,
    ) -> FitHistory:
        """Run the sampled training loop; return its :class:`FitHistory`.

        Parameters
        ----------
        nodes:
            Node set iterated per epoch (shuffled, then batched).
        epochs:
            Maximum epoch count.
        loss_fn:
            ``(TrainStep) -> Tensor`` per-step objective; the engine
            backpropagates it and steps the optimiser.
        rng:
            Generator (or seed) driving shuffling, neighbour sampling and
            any ``seed_fn`` draws.
        val_nodes, val_labels:
            Validation split scored with exact batched inference after
            every epoch.
        checkpoint:
            ``"best"`` — best-validation-accuracy model selection with
            optional ``patience`` early stopping, best state restored at
            the end.  ``"floor"`` — measure validation accuracy before the
            first epoch, stop (restoring the last state at or above the
            floor) once it drops more than ``val_tolerance`` below that;
            ``val_tolerance=None`` disables the floor but keeps the
            bookkeeping, and the final state is kept.
        patience:
            Epochs without validation improvement tolerated in ``"best"``
            mode (``None`` disables early stopping).
        val_tolerance:
            Allowed validation-accuracy drop in ``"floor"`` mode.
        forward:
            ``"logits"`` feeds ``model(features, blocks)`` to the closure,
            ``"embed"`` feeds ``model.embed_blocks(features, blocks)``
            (methods that apply their own head / representation losses).
        seed_fn:
            Optional ``(batch, rng) -> (seeds, payload)`` extending the
            sampled seed set beyond the batch; ``seeds`` must be sorted,
            unique and contain ``batch``.
        sort_batches:
            Sort each batch before use, making within-batch summation order
            deterministic (epoch randomness then lives only in the batch
            composition — required for covering-batch bit-parity by
            consumers without a sorting seed extension).
        on_epoch_start, on_epoch_end:
            Epoch callbacks: ``on_epoch_start(epoch)`` runs before the
            epoch's cache/refresh decision (so it may call
            :meth:`invalidate_cache`); ``on_epoch_end(epoch)`` runs after
            the batch loop, before validation.
        """
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        if checkpoint not in ("best", "floor"):
            raise ValueError(f"checkpoint must be 'best' or 'floor', got {checkpoint!r}")
        if forward not in ("logits", "embed"):
            raise ValueError(f"forward must be 'logits' or 'embed', got {forward!r}")
        nodes = np.asarray(nodes, dtype=np.int64).reshape(-1)
        if nodes.size == 0:
            raise ValueError("nodes must be non-empty")
        val_nodes = np.asarray(val_nodes, dtype=np.int64).reshape(-1)
        val_labels = np.asarray(val_labels)
        if val_nodes.size == 0:
            raise ValueError("val_nodes must be non-empty")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)

        model = self.model
        history = FitHistory()
        cache = EpochBlockCache(self.cache_epochs)
        self._active_cache = cache
        owned_pool = None
        prefetcher = None
        if self.num_workers > 0:
            from repro.training.parallel import EpochPrefetcher, WorkerPool

            pool = self._shared_pool
            if pool is None:
                pool = owned_pool = WorkerPool(
                    self.num_workers, adjacency=self.adjacency
                )
            elif not pool.matches_sampler(self.sampler):
                raise ValueError(
                    "worker_pool was built over a different adjacency than "
                    "this engine's sampler; share one graph object or let "
                    "the engine own its pool"
                )
            prefetcher = EpochPrefetcher(
                self.sampler,
                nodes,
                self.batch_size,
                rng,
                pool,
                seed_fn=seed_fn,
                sort_batches=sort_batches,
                prefetch_epochs=self.prefetch_epochs,
            )
            self._active_prefetcher = prefetcher
        # The exact validation pass folds full (un-sampled) neighbourhoods,
        # which depend only on the fixed graph and the fixed val split —
        # build its block chains once per fit and reuse them every epoch.
        # Trade-off: the val set's receptive field stays resident for the
        # whole fit (same order as one cached training epoch's structure).
        eval_steps = self._build_eval_steps(val_nodes)
        since_best = 0
        best_state = model.state_dict()
        floor = -np.inf
        if checkpoint == "floor":
            floor = self._validate(eval_steps, val_labels) - (
                np.inf if val_tolerance is None else val_tolerance
            )
        try:
            for epoch in range(epochs):
                if on_epoch_start is not None:
                    on_epoch_start(epoch)
                replay = cache.start_epoch()
                model.train()
                epoch_loss = 0.0
                started = time.perf_counter()
                if replay:
                    steps = cache.steps()
                elif prefetcher is not None:
                    steps = prefetcher.next_epoch()
                    for step in steps:
                        cache.record(*step)
                else:
                    steps = self._fresh_steps(
                        nodes, rng, seed_fn, sort_batches, cache
                    )
                for batch, seeds, payload, blocks in steps:
                    batch_features = Tensor(self.feature_array[blocks[0].src_nodes])
                    self.optimizer.zero_grad()
                    if forward == "logits":
                        output = model(batch_features, blocks)
                    else:
                        output = model.embed_blocks(batch_features, blocks)
                    loss = loss_fn(
                        TrainStep(
                            epoch=epoch,
                            batch=batch,
                            seeds=seeds,
                            blocks=blocks,
                            output=output,
                            payload=payload,
                        )
                    )
                    loss.backward()
                    self.optimizer.step()
                    epoch_loss += float(loss.data) * batch.size
                history.epoch_train_seconds.append(time.perf_counter() - started)

                if on_epoch_end is not None:
                    on_epoch_end(epoch)
                val_acc = self._validate(eval_steps, val_labels)
                history.train_loss.append(epoch_loss / nodes.size)
                history.val_accuracy.append(val_acc)

                if checkpoint == "best":
                    if val_acc > history.best_val_accuracy:
                        history.best_val_accuracy = val_acc
                        history.best_epoch = epoch
                        best_state = model.state_dict()
                        since_best = 0
                    else:
                        since_best += 1
                        if patience is not None and since_best > patience:
                            history.stopped_early = True
                            break
                else:  # floor
                    if val_acc >= floor:
                        if val_acc > history.best_val_accuracy:
                            history.best_val_accuracy = val_acc
                            history.best_epoch = epoch
                        best_state = model.state_dict()
                    elif val_tolerance is not None:
                        model.load_state_dict(best_state)
                        history.stopped_early = True
                        break
        finally:
            self._active_cache = None
            self._active_prefetcher = None
            if prefetcher is not None:
                # Sync the engine generator to the post-last-delivered-epoch
                # state — exactly where serial training would have left it.
                prefetcher.close(rng)
            if owned_pool is not None:
                owned_pool.shutdown()
        if checkpoint == "best":
            model.load_state_dict(best_state)
        return history

    # ------------------------------------------------------------------ #
    def _fresh_steps(self, nodes, rng, seed_fn, sort_batches, cache):
        """Sample one epoch's steps, recording them for cache replay."""
        for batch in iter_minibatches(nodes, self.batch_size, rng):
            if sort_batches:
                batch = np.sort(batch)
            if seed_fn is not None:
                seeds, payload = seed_fn(batch, rng)
            else:
                seeds, payload = batch, None
            blocks = self.sampler.sample_blocks(seeds, rng)
            cache.record(batch, seeds, payload, blocks)
            yield batch, seeds, payload, blocks

    def _build_eval_steps(
        self, nodes: np.ndarray
    ) -> list[tuple[np.ndarray, list[Block]]]:
        """Exact-evaluation ``(batch, blocks)`` pairs for ``nodes``.

        Full-neighbourhood sampling is deterministic (it consumes no
        randomness) and the graph never changes during a fit, so these
        chains are built once per :meth:`run` instead of once per epoch —
        the validation pass then only pays the forward computation.
        """
        rng = np.random.default_rng(0)  # never consumed by exhaustive fanout
        return [
            (batch, self.eval_sampler.sample_blocks(batch, rng))
            for batch in iter_minibatches(nodes, self.eval_batch_size)
        ]

    def _validate(
        self,
        eval_steps: list[tuple[np.ndarray, list[Block]]],
        val_labels: np.ndarray,
    ) -> float:
        """Exact validation accuracy over prebuilt eval block chains."""
        model = self.model
        was_training = model.training
        model.eval()
        parts = []
        with no_grad():
            for batch, blocks in eval_steps:
                batch_features = Tensor(self.feature_array[blocks[0].src_nodes])
                parts.append(model(batch_features, blocks).data)
        model.train(was_training)
        logits = np.concatenate(parts)
        return accuracy((logits > 0).astype(np.int64), val_labels)
