"""Scenario protocol and the task-generic experiment runner.

A :class:`Scenario` names one cell of the (graph family × fairness task)
matrix: which dataset reference to load (any spelling
:func:`repro.datasets.load_dataset` accepts — benchmark name, graph family,
saved path), which task to run (node classification or link prediction),
which sensitive attributes the audit covers, and the generator parameters.

The runner layer is task-generic where :mod:`repro.experiments.table2` was
node-classification-specific: :func:`run_scenario_method` dispatches one
(method, seed) run by task kind, :func:`run_scenario_cell` repeats it over
methods × seeds exactly like a Table-II cell (same loop order, so existing
Table-II numbers are unchanged), and :func:`run_scenario_matrix` sweeps a
list of scenarios.  Node-classification scenarios naming more than one
sensitive attribute additionally get a seed-0 intersectional audit per
method (:func:`repro.fairness.audit_intersectional` over the test split),
with extra attributes resolved from ``graph.meta["extra_sensitive"]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.base import MethodResult
from repro.core import ExecutionConfig
from repro.datasets import load_dataset
from repro.experiments.aggregate import MetricSummary, summarize
from repro.experiments.linkpred import run_linkpred_method
from repro.experiments.methods import METHOD_ORDER, run_method
from repro.experiments.scale import Scale
from repro.fairness import IntersectionalAudit, audit_intersectional
from repro.graph import Graph

__all__ = [
    "TASKS",
    "Scenario",
    "ScenarioCellResult",
    "run_scenario_method",
    "run_scenario_cell",
    "run_scenario_matrix",
    "format_scenario_matrix",
]

TASKS = ("node_classification", "link_prediction")

_TASK_SHORT = {"node_classification": "nc", "link_prediction": "lp"}


@dataclass
class Scenario:
    """One cell recipe of the scenario matrix.

    Attributes
    ----------
    dataset:
        Any :func:`repro.datasets.load_dataset` reference — a benchmark
        name ("nba"), a graph family ("sbm"), or a saved-graph path.
    task:
        One of :data:`TASKS`.
    sensitive_attrs:
        Attribute names the fairness audit covers.  ``"sensitive"`` is the
        graph's primary attribute; any other name must exist in
        ``graph.meta["extra_sensitive"]`` (planted extra attributes, the
        SBM's ``"community"``).  More than one name turns on the
        intersectional audit (node classification only).
    dataset_params:
        Generator keyword arguments forwarded to ``load_dataset`` (family
        references only — e.g. ``{"num_nodes": 400, "mixing": 0.3}``).
    name:
        Optional display label; defaults to ``"<dataset>/<task-short>"``.
    """

    dataset: str
    task: str = "node_classification"
    sensitive_attrs: tuple[str, ...] = ("sensitive",)
    dataset_params: dict = field(default_factory=dict)
    name: str | None = None

    def validate(self) -> None:
        if self.task not in TASKS:
            raise ValueError(f"unknown task {self.task!r}; choose from {TASKS}")
        if not self.sensitive_attrs:
            raise ValueError("sensitive_attrs must name at least one attribute")
        if len(self.sensitive_attrs) > 1 and self.task != "node_classification":
            raise ValueError(
                "intersectional auditing (multiple sensitive_attrs) is only "
                "wired for node classification"
            )

    @property
    def label(self) -> str:
        """Stable display key for this cell."""
        return self.name or f"{self.dataset}/{_TASK_SHORT[self.task]}"

    def load(self, seed: int = 0) -> Graph:
        """Materialise the scenario's graph for one seed."""
        return load_dataset(self.dataset, seed=seed, **self.dataset_params)

    def attributes(self, graph: Graph) -> dict[str, np.ndarray]:
        """Resolve ``sensitive_attrs`` to aligned node arrays."""
        extra = graph.meta.get("extra_sensitive", {})
        out: dict[str, np.ndarray] = {}
        for name in self.sensitive_attrs:
            if name == "sensitive":
                out[name] = graph.sensitive
            elif name in extra:
                out[name] = np.asarray(extra[name])
            else:
                raise KeyError(
                    f"scenario attribute {name!r} not found; graph "
                    f"{graph.name!r} offers 'sensitive' plus {sorted(extra)}"
                )
        return out


def run_scenario_method(
    scenario: Scenario,
    method: str,
    graph: Graph,
    backbone: str = "gcn",
    seed: int = 0,
    scale: Scale | None = None,
    execution: ExecutionConfig | None = None,
    keep_logits: bool = False,
) -> MethodResult:
    """Run one (method, seed) cell entry, dispatching on the scenario task.

    Node classification funnels through the existing
    :func:`~repro.experiments.methods.run_method` with the scale's budgets;
    link prediction through
    :func:`~repro.experiments.linkpred.run_linkpred_method`
    (``keep_logits`` has no meaning there — LP audits score edges directly).
    """
    scenario.validate()
    scale = scale or Scale.quick()
    if scenario.task == "node_classification":
        return run_method(
            method,
            graph,
            backbone=backbone,
            seed=seed,
            epochs=scale.epochs,
            finetune_epochs=scale.finetune_epochs,
            patience=scale.patience,
            execution=execution,
            keep_logits=keep_logits,
        )
    return run_linkpred_method(
        method,
        graph,
        backbone=backbone,
        seed=seed,
        epochs=scale.epochs,
        execution=execution,
    )


@dataclass
class ScenarioCellResult:
    """Aggregated outcome of one scenario × backbone cell.

    ``summaries`` maps method key → seed-aggregated
    :class:`~repro.experiments.aggregate.MetricSummary`;
    ``intersectional`` (multi-attribute node-classification scenarios only)
    maps method key → the seed-0 test-split
    :class:`~repro.fairness.IntersectionalAudit`.
    """

    scenario: Scenario
    backbone: str
    methods: list[str]
    summaries: dict[str, MetricSummary] = field(default_factory=dict)
    intersectional: dict[str, IntersectionalAudit] = field(default_factory=dict)


def run_scenario_cell(
    scenario: Scenario,
    methods: list[str] | None = None,
    backbone: str = "gcn",
    scale: Scale | None = None,
    execution: ExecutionConfig | None = None,
) -> ScenarioCellResult:
    """Run the method comparison on one scenario cell.

    The loop order (method outer, seed inner, graph re-loaded per run)
    matches the historical Table-II harness exactly, so node-classification
    cells reproduce its numbers bit-for-bit.
    """
    scenario.validate()
    methods = methods or list(METHOD_ORDER)
    scale = scale or Scale.quick()
    intersectional = (
        scenario.task == "node_classification" and len(scenario.sensitive_attrs) > 1
    )
    result = ScenarioCellResult(
        scenario=scenario, backbone=backbone, methods=methods
    )
    for method in methods:
        runs = []
        for seed in range(scale.seeds):
            graph = scenario.load(seed=seed)
            keep = intersectional and seed == 0
            run = run_scenario_method(
                scenario,
                method,
                graph,
                backbone=backbone,
                seed=seed,
                scale=scale,
                execution=execution,
                keep_logits=keep,
            )
            if keep:
                test = graph.test_mask
                attrs = {
                    name: values[test]
                    for name, values in scenario.attributes(graph).items()
                }
                result.intersectional[method] = audit_intersectional(
                    run.extra.pop("logits")[test], graph.labels[test], attrs
                )
            runs.append(run)
        result.summaries[method] = summarize(runs)
    return result


def run_scenario_matrix(
    scenarios: list[Scenario],
    methods: list[str] | None = None,
    backbone: str = "gcn",
    scale: Scale | None = None,
    execution: ExecutionConfig | None = None,
) -> dict[str, ScenarioCellResult]:
    """Sweep the method comparison over a list of scenario cells."""
    results: dict[str, ScenarioCellResult] = {}
    for scenario in scenarios:
        if scenario.label in results:
            raise ValueError(f"duplicate scenario label {scenario.label!r}")
        results[scenario.label] = run_scenario_cell(
            scenario,
            methods=methods,
            backbone=backbone,
            scale=scale,
            execution=execution,
        )
    return results


def format_scenario_matrix(results: dict[str, ScenarioCellResult]) -> str:
    """Render a scenario sweep as one table per cell."""
    from repro.experiments.methods import display_name

    lines = ["Scenario matrix: ACC(↑)  ΔSP(↓)  ΔEO(↓), % mean±std"]
    for label, cell in results.items():
        attrs = " × ".join(cell.scenario.sensitive_attrs)
        lines.append(f"\n=== {label} [{cell.backbone.upper()}] ({attrs}) ===")
        for method in cell.methods:
            lines.append(
                f"    {display_name(method):12s} {cell.summaries[method].row()}"
            )
            audit = cell.intersectional.get(method)
            if audit is not None:
                sp = audit.delta_sp
                eo = audit.delta_eo
                lines.append(
                    f"                  joint ΔSP {100 * sp:.2f}  "
                    f"joint ΔEO {100 * eo:.2f}  "
                    f"({audit.num_cells} cells, {audit.num_empty_cells} empty)"
                )
    return "\n".join(lines)
