"""Uniform method registry used by all experiments.

``run_method(name, graph, ...)`` trains any of the six Table II methods and
returns a :class:`~repro.baselines.base.MethodResult`, so the experiment
code never special-cases Fairwos vs the baselines.

``FAIRWOS_OVERRIDES`` records the per-dataset (α, fine-tune lr) pairs picked
from the paper's hyper-parameter grid (α ∈ {0.01, 0.05, 1, 2, 5}, selected
on validation, Section V-A-4); datasets with severe vanilla bias get the
strong end of the grid.
"""

from __future__ import annotations

import time
import warnings

from repro.baselines import FairGKD, KSMOTE, FairRF, RemoveR, Vanilla
from repro.baselines.base import MethodResult
from repro.core import ExecutionConfig, FairwosConfig, FairwosTrainer
from repro.graph import Graph
from repro.tensor import backend_scope, dtype_scope

__all__ = ["available_methods", "run_method", "FAIRWOS_OVERRIDES", "METHOD_ORDER"]

# Sentinel distinguishing "caller never passed this flat kwarg" from any
# real value (None is a meaningful setting for several of them).
_UNSET = object()

# The legacy flat spellings of the execution knobs, in ExecutionConfig
# order.  num_workers/prefetch_epochs are deliberately absent: the new
# knobs are only reachable through ``execution=ExecutionConfig(...)``.
_FLAT_EXECUTION_KWARGS = (
    "minibatch",
    "fanouts",
    "batch_size",
    "cache_epochs",
    "cf_backend",
    "cf_refresh_epochs",
    "finetune_minibatch",
    "cf_update",
    "dtype",
    "backend",
)

METHOD_ORDER = [
    "vanilla",
    "remover",
    "ksmote",
    "fairrf",
    "fairgkd",
    "fairwos",
]

_DISPLAY = {
    "vanilla": "Vanilla\\S",
    "remover": "RemoveR",
    "ksmote": "KSMOTE",
    "fairrf": "FairRF",
    "fairgkd": "FairGKD\\S",
    "fairwos": "Fairwos",
}

# Per-dataset Fairwos settings from the paper's α grid; "default" covers any
# dataset not listed (including user-generated graphs).
FAIRWOS_OVERRIDES: dict[str, dict[str, float]] = {
    "default": {"alpha": 2.0, "finetune_learning_rate": 0.005},
    "bail": {"alpha": 2.0, "finetune_learning_rate": 0.005},
    "credit": {"alpha": 2.0, "finetune_learning_rate": 0.005},
    "pokec_z": {"alpha": 5.0, "finetune_learning_rate": 0.01},
    "pokec_n": {"alpha": 2.0, "finetune_learning_rate": 0.005},
    "nba": {"alpha": 5.0, "finetune_learning_rate": 0.01},
    "occupation": {"alpha": 5.0, "finetune_learning_rate": 0.01},
}


def available_methods() -> list[str]:
    """Method keys accepted by :func:`run_method`, in Table II order."""
    return list(METHOD_ORDER)


def display_name(method: str) -> str:
    """Paper-style display name of a method key."""
    return _DISPLAY[method]


def run_method(
    method: str,
    graph: Graph,
    backbone: str = "gcn",
    seed: int = 0,
    epochs: int = 150,
    finetune_epochs: int = 15,
    patience: int | None = 30,
    fairwos_config: FairwosConfig | None = None,
    execution: ExecutionConfig | None = None,
    minibatch=_UNSET,
    fanouts=_UNSET,
    batch_size=_UNSET,
    cache_epochs=_UNSET,
    cf_backend=_UNSET,
    cf_refresh_epochs=_UNSET,
    finetune_minibatch=_UNSET,
    cf_update=_UNSET,
    dtype=_UNSET,
    backend=_UNSET,
    keep_model: bool = False,
    keep_logits: bool = False,
) -> MethodResult:
    """Train one method and return its evaluation.

    This is the single entry point every experiment, benchmark and CLI
    command funnels through, so the experiment code never special-cases
    Fairwos vs the baselines.  The returned
    :class:`~repro.baselines.base.MethodResult` carries the evaluation
    triple; with ``keep_model=True`` it additionally carries the fitted
    runner, ready for :func:`repro.io.save_artifact`.

    Parameters
    ----------
    method:
        One of :func:`available_methods`.
    graph:
        Dataset to train on (sensitive attribute used only for evaluation).
    backbone:
        GNN backbone for the method ("gcn" or "gin" in the paper).
    seed:
        Weight-init / stochasticity seed.
    epochs, finetune_epochs, patience:
        Budgets (see :class:`~repro.experiments.scale.Scale`).
    fairwos_config:
        Full config override for the Fairwos run; when None the per-dataset
        entry of :data:`FAIRWOS_OVERRIDES` is applied.  Execution settings
        that disagree with an explicit config are rejected — set them on
        the config itself.
    execution:
        How the method executes, as one
        :class:`~repro.core.config.ExecutionConfig` value: sampled vs
        full-batch training (``minibatch``/``fanouts``/``batch_size``/
        ``cache_epochs``), the Fairwos fine-tune scaling knobs
        (``finetune_minibatch``/``cf_backend``/``cf_refresh_epochs``/
        ``cf_update`` — ignored by baselines), precision and array backend
        (``dtype``/``backend``), and multiprocess sampling
        (``num_workers``/``prefetch_epochs``; see
        :mod:`repro.training.parallel`).  Every method honours the shared
        fields: "vanilla"/"remover" train through the shared
        :func:`~repro.training.fit_minibatch` engine, "ksmote" adds a
        minibatch-k-means cluster step, "fairrf"/"fairgkd" evaluate their
        fairness terms on sampled batches, and "fairwos" runs all three
        phases sampled.  With ``fanouts`` set, the backbone depth follows
        its length.  ``None`` means the defaults (full-batch, exact,
        float64, numpy, in-process).
    minibatch, fanouts, batch_size, cache_epochs, cf_backend, \
    cf_refresh_epochs, finetune_minibatch, cf_update, dtype, backend:
        **Deprecated** flat spellings of the matching
        :class:`~repro.core.config.ExecutionConfig` fields, kept as a
        compatibility shim.  Passing any of them emits a
        ``DeprecationWarning``; passing them *and* ``execution`` is an
        error.  ``num_workers``/``prefetch_epochs`` have no flat
        spelling — they are only reachable through ``execution``.
    keep_model:
        Attach the fitted runner (the :class:`~repro.core.FairwosTrainer`
        or baseline instance) to ``result.extra["model"]`` so callers can
        persist it with :func:`repro.io.save_artifact` (the CLI's
        ``run --save``).  Off by default: sweep-style callers run many
        methods and must not pin every model in memory.
    keep_logits:
        Attach the full-graph test-time logits as ``result.extra["logits"]``
        (the intersectional audit slices them per joint subgroup).  Off by
        default for the same memory reason as ``keep_model``.
    """
    flat = {
        name: value
        for name, value in (
            ("minibatch", minibatch),
            ("fanouts", fanouts),
            ("batch_size", batch_size),
            ("cache_epochs", cache_epochs),
            ("cf_backend", cf_backend),
            ("cf_refresh_epochs", cf_refresh_epochs),
            ("finetune_minibatch", finetune_minibatch),
            ("cf_update", cf_update),
            ("dtype", dtype),
            ("backend", backend),
        )
        if value is not _UNSET
    }
    if flat:
        if execution is not None:
            raise ValueError(
                "execution settings were passed both as flat keyword "
                f"arguments ({', '.join(sorted(flat))}) and as "
                "execution=ExecutionConfig(...); pass them only through "
                "the ExecutionConfig"
            )
        warnings.warn(
            "passing execution settings to run_method as flat keyword "
            f"arguments ({', '.join(sorted(flat))}) is deprecated; pass "
            "execution=ExecutionConfig(...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        execution = ExecutionConfig(**flat)
    if execution is None:
        execution = ExecutionConfig()
    execution.validate()

    key = method.lower()
    baseline_classes = {
        "vanilla": Vanilla,
        "remover": RemoveR,
        "ksmote": KSMOTE,
        "fairrf": FairRF,
        "fairgkd": FairGKD,
    }
    if key in baseline_classes:
        kwargs = dict(
            backbone=backbone,
            epochs=epochs,
            patience=patience,
            minibatch=execution.minibatch,
            fanouts=execution.fanouts,
            batch_size=execution.batch_size,
            cache_epochs=execution.cache_epochs,
            num_workers=execution.num_workers,
            prefetch_epochs=execution.prefetch_epochs,
            num_layers=len(execution.fanouts) if execution.fanouts else 1,
        )
        runner = baseline_classes[key](**kwargs)
        with backend_scope(execution.backend), dtype_scope(execution.dtype):
            result = runner.fit(graph, seed=seed, keep_logits=keep_logits)
        if keep_model:
            result.extra["model"] = runner
        return result
    if key != "fairwos":
        raise ValueError(f"unknown method {method!r}; choose from {METHOD_ORDER}")

    if fairwos_config is not None:
        # Every execution field set away from its default must agree with
        # the explicit config — a silent winner would make runs depend on
        # which spelling the caller happened to use.  (This covers every
        # field, including fanouts/batch_size, which the historical check
        # missed.)
        conflicts = [
            name
            for name, value in sorted(execution.non_default_items().items())
            if getattr(fairwos_config, name) != value
        ]
        if conflicts:
            raise ValueError(
                f"execution settings ({', '.join(conflicts)}) disagree with "
                "the explicit fairwos_config; when supplying a full config, "
                "set its execution fields (minibatch/fanouts/batch_size/"
                "cache_epochs/cf_backend/cf_refresh_epochs/"
                "finetune_minibatch/cf_update/dtype/backend/num_workers/"
                "prefetch_epochs) directly"
            )
    if fairwos_config is None:
        overrides = FAIRWOS_OVERRIDES.get(graph.name, FAIRWOS_OVERRIDES["default"])
        fairwos_config = FairwosConfig(
            backbone=backbone,
            encoder_epochs=epochs,
            classifier_epochs=epochs,
            finetune_epochs=finetune_epochs,
            patience=patience,
            minibatch=execution.minibatch,
            fanouts=execution.fanouts,
            batch_size=execution.batch_size,
            cache_epochs=execution.cache_epochs,
            num_layers=len(execution.fanouts) if execution.fanouts else 1,
            cf_backend=execution.cf_backend,
            cf_refresh_epochs=execution.cf_refresh_epochs,
            finetune_minibatch=execution.finetune_minibatch,
            cf_update=execution.cf_update,
            dtype=execution.dtype,
            backend=execution.backend,
            num_workers=execution.num_workers,
            prefetch_epochs=execution.prefetch_epochs,
            **overrides,
        )
    start = time.perf_counter()
    trainer = FairwosTrainer(fairwos_config)
    result = trainer.fit(graph, seed=seed)
    seconds = time.perf_counter() - start
    extra = {
        "lambda_weights": result.lambda_weights,
        "counterfactual_coverage": result.counterfactual_coverage,
        "timings": result.timings,
    }
    if keep_model:
        extra["model"] = trainer
    if keep_logits:
        # predict() re-enters the config's backend/dtype scopes itself.
        extra["logits"] = trainer.predict(graph)
    return MethodResult(
        method="Fairwos",
        test=result.test,
        validation=result.validation,
        seconds=seconds,
        extra=extra,
    )
