"""Uniform method registry used by all experiments.

``run_method(name, graph, ...)`` trains any of the six Table II methods and
returns a :class:`~repro.baselines.base.MethodResult`, so the experiment
code never special-cases Fairwos vs the baselines.

``FAIRWOS_OVERRIDES`` records the per-dataset (α, fine-tune lr) pairs picked
from the paper's hyper-parameter grid (α ∈ {0.01, 0.05, 1, 2, 5}, selected
on validation, Section V-A-4); datasets with severe vanilla bias get the
strong end of the grid.
"""

from __future__ import annotations

import time

from repro.baselines import FairGKD, KSMOTE, FairRF, RemoveR, Vanilla
from repro.baselines.base import MethodResult
from repro.core import FairwosConfig, FairwosTrainer
from repro.graph import Graph
from repro.tensor import backend_scope, dtype_scope

__all__ = ["available_methods", "run_method", "FAIRWOS_OVERRIDES", "METHOD_ORDER"]

METHOD_ORDER = [
    "vanilla",
    "remover",
    "ksmote",
    "fairrf",
    "fairgkd",
    "fairwos",
]

_DISPLAY = {
    "vanilla": "Vanilla\\S",
    "remover": "RemoveR",
    "ksmote": "KSMOTE",
    "fairrf": "FairRF",
    "fairgkd": "FairGKD\\S",
    "fairwos": "Fairwos",
}

# Per-dataset Fairwos settings from the paper's α grid; "default" covers any
# dataset not listed (including user-generated graphs).
FAIRWOS_OVERRIDES: dict[str, dict[str, float]] = {
    "default": {"alpha": 2.0, "finetune_learning_rate": 0.005},
    "bail": {"alpha": 2.0, "finetune_learning_rate": 0.005},
    "credit": {"alpha": 2.0, "finetune_learning_rate": 0.005},
    "pokec_z": {"alpha": 5.0, "finetune_learning_rate": 0.01},
    "pokec_n": {"alpha": 2.0, "finetune_learning_rate": 0.005},
    "nba": {"alpha": 5.0, "finetune_learning_rate": 0.01},
    "occupation": {"alpha": 5.0, "finetune_learning_rate": 0.01},
}


def available_methods() -> list[str]:
    """Method keys accepted by :func:`run_method`, in Table II order."""
    return list(METHOD_ORDER)


def display_name(method: str) -> str:
    """Paper-style display name of a method key."""
    return _DISPLAY[method]


def run_method(
    method: str,
    graph: Graph,
    backbone: str = "gcn",
    seed: int = 0,
    epochs: int = 150,
    finetune_epochs: int = 15,
    patience: int | None = 30,
    fairwos_config: FairwosConfig | None = None,
    minibatch: bool = False,
    fanouts: tuple[int, ...] | None = None,
    batch_size: int = 512,
    cache_epochs: int = 1,
    cf_backend: str = "exact",
    cf_refresh_epochs: int | None = None,
    finetune_minibatch: bool | None = None,
    cf_update: str = "rebuild",
    dtype: str = "float64",
    backend: str = "numpy",
    keep_model: bool = False,
) -> MethodResult:
    """Train one method and return its evaluation.

    This is the single entry point every experiment, benchmark and CLI
    command funnels through, so the experiment code never special-cases
    Fairwos vs the baselines.  The returned
    :class:`~repro.baselines.base.MethodResult` carries the evaluation
    triple; with ``keep_model=True`` it additionally carries the fitted
    runner, ready for :func:`repro.io.save_artifact`.

    Parameters
    ----------
    method:
        One of :func:`available_methods`.
    graph:
        Dataset to train on (sensitive attribute used only for evaluation).
    backbone:
        GNN backbone for the method ("gcn" or "gin" in the paper).
    seed:
        Weight-init / stochasticity seed.
    epochs, finetune_epochs, patience:
        Budgets (see :class:`~repro.experiments.scale.Scale`).
    fairwos_config:
        Full config override for the Fairwos run; when None the per-dataset
        entry of :data:`FAIRWOS_OVERRIDES` is applied.
    minibatch, fanouts, batch_size:
        Neighbour-sampled training (large graphs).  Supported by every
        method: "vanilla"/"remover" train through the shared
        :func:`~repro.training.fit_minibatch` engine, "ksmote" adds a
        minibatch-k-means cluster step, "fairrf"/"fairgkd" evaluate their
        fairness terms on sampled batches, and "fairwos" runs all three
        phases sampled.  With ``fanouts`` set, the backbone depth follows
        its length.
    cache_epochs:
        Epoch-level sampling-cache window of the minibatch engine: sampled
        batch structure is refreshed every that many epochs and replayed in
        between (1 = fresh every epoch).  Applies to every
        minibatch-capable method.
    cf_backend, cf_refresh_epochs, finetune_minibatch, cf_update:
        Fairwos fine-tune scaling knobs (see
        :class:`~repro.core.config.FairwosConfig`); ignored by baselines.
        ``cf_update="incremental"`` maintains the ANN forest in place
        between refreshes instead of rebuilding it (drift threshold and
        rebuild escape hatch via ``fairwos_config``).
    dtype:
        Floating precision of the training stack (``"float64"`` or
        ``"float32"``).  Fairwos threads it through
        :attr:`~repro.core.config.FairwosConfig.dtype`; baselines run
        inside a :func:`repro.tensor.dtype_scope`.  ``"float32"`` halves
        resident memory on the large-graph tier.
    backend:
        Array backend of the training stack (``"numpy"`` default;
        ``"torch"`` when PyTorch is importable).  Fairwos threads it
        through :attr:`~repro.core.config.FairwosConfig.backend`;
        baselines run inside a :func:`repro.tensor.backend_scope`.
    keep_model:
        Attach the fitted runner (the :class:`~repro.core.FairwosTrainer`
        or baseline instance) to ``result.extra["model"]`` so callers can
        persist it with :func:`repro.io.save_artifact` (the CLI's
        ``run --save``).  Off by default: sweep-style callers run many
        methods and must not pin every model in memory.
    """
    key = method.lower()
    baseline_classes = {
        "vanilla": Vanilla,
        "remover": RemoveR,
        "ksmote": KSMOTE,
        "fairrf": FairRF,
        "fairgkd": FairGKD,
    }
    if key in baseline_classes:
        kwargs = dict(
            backbone=backbone,
            epochs=epochs,
            patience=patience,
            minibatch=minibatch,
            fanouts=fanouts,
            batch_size=batch_size,
            cache_epochs=cache_epochs,
            num_layers=len(fanouts) if fanouts else 1,
        )
        runner = baseline_classes[key](**kwargs)
        with backend_scope(backend), dtype_scope(dtype):
            result = runner.fit(graph, seed=seed)
        if keep_model:
            result.extra["model"] = runner
        return result
    if key != "fairwos":
        raise ValueError(f"unknown method {method!r}; choose from {METHOD_ORDER}")

    if fairwos_config is not None and (
        minibatch
        or cache_epochs != 1
        or cf_backend != "exact"
        or cf_refresh_epochs is not None
        or finetune_minibatch is not None
        or cf_update != "rebuild"
        or dtype != "float64"
        or backend != "numpy"
    ):
        raise ValueError(
            "pass minibatch/counterfactual/dtype/backend settings inside "
            "fairwos_config (minibatch/fanouts/batch_size/cache_epochs/"
            "cf_backend/cf_refresh_epochs/cf_update/dtype/backend fields) "
            "when supplying an explicit config"
        )
    if fairwos_config is None:
        overrides = FAIRWOS_OVERRIDES.get(graph.name, FAIRWOS_OVERRIDES["default"])
        fairwos_config = FairwosConfig(
            backbone=backbone,
            encoder_epochs=epochs,
            classifier_epochs=epochs,
            finetune_epochs=finetune_epochs,
            patience=patience,
            minibatch=minibatch,
            fanouts=fanouts,
            batch_size=batch_size,
            cache_epochs=cache_epochs,
            num_layers=len(fanouts) if fanouts else 1,
            cf_backend=cf_backend,
            cf_refresh_epochs=cf_refresh_epochs,
            finetune_minibatch=finetune_minibatch,
            cf_update=cf_update,
            dtype=dtype,
            backend=backend,
            **overrides,
        )
    start = time.perf_counter()
    trainer = FairwosTrainer(fairwos_config)
    result = trainer.fit(graph, seed=seed)
    seconds = time.perf_counter() - start
    extra = {
        "lambda_weights": result.lambda_weights,
        "counterfactual_coverage": result.counterfactual_coverage,
        "timings": result.timings,
    }
    if keep_model:
        extra["model"] = trainer
    return MethodResult(
        method="Fairwos",
        test=result.test,
        validation=result.validation,
        seconds=seconds,
        extra=extra,
    )
