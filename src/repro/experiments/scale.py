"""Experiment scale presets.

The paper runs every experiment 10 times with long training budgets; that is
hours of CPU time on this substrate.  :class:`Scale` bundles the knobs so
benchmarks default to a quick-but-faithful configuration while
``Scale.paper()`` reproduces the full protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Scale"]


@dataclass(frozen=True)
class Scale:
    """Seeds and epoch budgets shared by all experiments.

    Attributes
    ----------
    seeds:
        Number of repetitions (paper: 10).
    epochs:
        Pre-training epochs for every method (paper: 1000 with early stop).
    finetune_epochs:
        Fairwos fine-tuning epochs (paper: 15).
    patience:
        Early-stopping patience on validation accuracy.
    """

    seeds: int = 2
    epochs: int = 150
    finetune_epochs: int = 15
    patience: int = 30

    @staticmethod
    def quick() -> "Scale":
        """Fast setting used by the benchmark suite (minutes, not hours)."""
        return Scale(seeds=2, epochs=120, finetune_epochs=15, patience=25)

    @staticmethod
    def smoke() -> "Scale":
        """Tiny setting for tests."""
        return Scale(seeds=1, epochs=30, finetune_epochs=4, patience=10)

    @staticmethod
    def paper() -> "Scale":
        """The paper's protocol (10 repetitions, long budgets)."""
        return Scale(seeds=10, epochs=1000, finetune_epochs=15, patience=60)
