"""Fig. 4 — ablation study on NBA and Bail.

Compares the backbone GNN, full Fairwos, and the three module ablations:
``Fwos w/o E`` (no encoder), ``Fwos w/o F`` (no fairness promotion) and
``Fwos w/o W`` (no weight updating), on GCN and GIN backbones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines import Vanilla
from repro.baselines.base import MethodResult
from repro.core import FairwosConfig, FairwosTrainer
from repro.datasets import load_dataset
from repro.experiments.aggregate import MetricSummary, summarize
from repro.experiments.methods import FAIRWOS_OVERRIDES
from repro.experiments.scale import Scale

__all__ = ["Fig4Result", "run_fig4", "format_fig4", "VARIANTS"]

VARIANTS = ["gnn", "fwos_wo_e", "fwos_wo_f", "fwos_wo_w", "fairwos"]

_DISPLAY = {
    "gnn": "GNN",
    "fwos_wo_e": "Fwos w/o E",
    "fwos_wo_f": "Fwos w/o F",
    "fwos_wo_w": "Fwos w/o W",
    "fairwos": "Fairwos",
}


@dataclass
class Fig4Result:
    """Summaries keyed by ``(dataset, backbone, variant)``."""

    datasets: list[str]
    backbones: list[str]
    cells: dict[tuple[str, str, str], MetricSummary] = field(default_factory=dict)
    runtimes: dict[tuple[str, str, str], float] = field(default_factory=dict)


def _variant_config(
    variant: str, dataset: str, backbone: str, scale: Scale
) -> FairwosConfig:
    overrides = FAIRWOS_OVERRIDES.get(dataset, FAIRWOS_OVERRIDES["default"])
    config = FairwosConfig(
        backbone=backbone,
        encoder_epochs=scale.epochs,
        classifier_epochs=scale.epochs,
        finetune_epochs=scale.finetune_epochs,
        patience=scale.patience,
        **overrides,
    )
    if variant == "fwos_wo_e":
        config.use_encoder = False
        # Raw attributes can be many; cap the pseudo-attribute count so the
        # counterfactual search stays tractable (documented deviation).
        config.max_pseudo_attributes = 64
    elif variant == "fwos_wo_f":
        config.use_fairness = False
    elif variant == "fwos_wo_w":
        config.use_weight_update = False
    elif variant != "fairwos":
        raise ValueError(f"unknown variant {variant!r}")
    return config


def run_variant(
    variant: str,
    dataset: str,
    backbone: str,
    seed: int,
    scale: Scale,
) -> MethodResult:
    """Train one ablation variant; ``gnn`` maps to the Vanilla baseline."""
    graph = load_dataset(dataset, seed=seed)
    if variant == "gnn":
        return Vanilla(
            backbone=backbone, epochs=scale.epochs, patience=scale.patience
        ).fit(graph, seed=seed)
    config = _variant_config(variant, dataset, backbone, scale)
    start = time.perf_counter()
    result = FairwosTrainer(config).fit(graph, seed=seed)
    seconds = time.perf_counter() - start
    return MethodResult(
        method=_DISPLAY[variant],
        test=result.test,
        validation=result.validation,
        seconds=seconds,
        extra={"timings": result.timings},
    )


def run_fig4(
    datasets: list[str] | None = None,
    backbones: list[str] | None = None,
    variants: list[str] | None = None,
    scale: Scale | None = None,
) -> Fig4Result:
    """Run the ablation grid of Fig. 4."""
    datasets = datasets or ["nba", "bail"]
    backbones = backbones or ["gcn", "gin"]
    variants = variants or list(VARIANTS)
    scale = scale or Scale.quick()
    result = Fig4Result(datasets=datasets, backbones=backbones)
    for dataset in datasets:
        for backbone in backbones:
            for variant in variants:
                runs = [
                    run_variant(variant, dataset, backbone, seed, scale)
                    for seed in range(scale.seeds)
                ]
                key = (dataset, backbone, variant)
                result.cells[key] = summarize(runs)
                result.runtimes[key] = sum(r.seconds for r in runs) / len(runs)
    return result


def format_fig4(result: Fig4Result) -> str:
    """Render the ablation bars as rows of ACC / ΔSP / ΔEO."""
    lines = ["Fig. 4: ablation — ACC(↑)  ΔSP(↓)  ΔEO(↓), % mean±std"]
    for dataset in result.datasets:
        for backbone in result.backbones:
            lines.append(f"\n=== {dataset} / {backbone.upper()} ===")
            for variant in VARIANTS:
                key = (dataset, backbone, variant)
                if key not in result.cells:
                    continue
                lines.append(f"  {_DISPLAY[variant]:12s} {result.cells[key].row()}")
    return "\n".join(lines)
