"""Extension experiment: counterfactual + individual fairness metrics.

The paper evaluates Fairwos with group metrics (ΔSP/ΔEO); this extension
checks the *counterfactual* notion it actually optimises, plus NIFTY-style
individual consistency:

* **flip rate** — fraction of test nodes whose decision differs from their
  nearest real counterfactual twin (per pseudo-sensitive attribute);
* **consistency** — agreement of each node's decision with its k nearest
  feature-space neighbours.

Expected shape: Fairwos's fine-tuning lowers the flip rate relative to the
same pipeline without the fairness loss, at comparable consistency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import (
    FairwosConfig,
    FairwosTrainer,
    evaluate_counterfactual_fairness,
)
from repro.datasets import load_dataset
from repro.experiments.methods import FAIRWOS_OVERRIDES
from repro.experiments.scale import Scale
from repro.fairness import consistency_score
from repro.tensor import Tensor, no_grad

__all__ = ["CfFairnessResult", "run_ext_cf_fairness", "format_ext_cf_fairness"]


@dataclass
class CfFairnessResult:
    """Counterfactual/individual fairness of Fairwos vs its no-F ablation."""

    dataset: str
    flip_rate_fairwos: float
    flip_rate_no_fairness: float
    consistency_fairwos: float
    consistency_no_fairness: float
    group_dsp_fairwos: float
    group_dsp_no_fairness: float


def _run_one(dataset: str, use_fairness: bool, seed: int, scale: Scale):
    graph = load_dataset(dataset, seed=seed)
    overrides = FAIRWOS_OVERRIDES.get(dataset, FAIRWOS_OVERRIDES["default"])
    config = FairwosConfig(
        encoder_epochs=scale.epochs,
        classifier_epochs=scale.epochs,
        finetune_epochs=scale.finetune_epochs,
        patience=scale.patience,
        use_fairness=use_fairness,
        **overrides,
    )
    trainer = FairwosTrainer(config)
    fit = trainer.fit(graph, seed=seed)
    logits = trainer.predict(graph)
    with no_grad():
        reps = trainer.classifier.embed(
            Tensor(fit.pseudo_attributes), graph.adjacency
        ).data
    report = evaluate_counterfactual_fairness(
        logits, reps, fit.pseudo_attributes, graph.labels, mask=graph.test_mask
    )
    consistency = consistency_score(
        logits[graph.test_mask], graph.features[graph.test_mask]
    )
    return report.overall, consistency, fit.test.delta_sp


def run_ext_cf_fairness(
    dataset: str = "nba", scale: Scale | None = None
) -> CfFairnessResult:
    """Compare flip rate / consistency with and without the fairness loss."""
    scale = scale or Scale.quick()
    flips_f, cons_f, dsp_f = [], [], []
    flips_n, cons_n, dsp_n = [], [], []
    for seed in range(scale.seeds):
        flip, cons, dsp = _run_one(dataset, True, seed, scale)
        flips_f.append(flip), cons_f.append(cons), dsp_f.append(dsp)
        flip, cons, dsp = _run_one(dataset, False, seed, scale)
        flips_n.append(flip), cons_n.append(cons), dsp_n.append(dsp)
    return CfFairnessResult(
        dataset=dataset,
        flip_rate_fairwos=float(np.nanmean(flips_f)),
        flip_rate_no_fairness=float(np.nanmean(flips_n)),
        consistency_fairwos=float(np.mean(cons_f)),
        consistency_no_fairness=float(np.mean(cons_n)),
        group_dsp_fairwos=float(np.mean(dsp_f)),
        group_dsp_no_fairness=float(np.mean(dsp_n)),
    )


def format_ext_cf_fairness(result: CfFairnessResult) -> str:
    """Render the comparison."""
    return "\n".join(
        [
            f"Extension: counterfactual & individual fairness on {result.dataset}",
            "                       Fairwos    w/o fairness loss",
            f"  CF flip rate        {result.flip_rate_fairwos:8.3f}   "
            f"{result.flip_rate_no_fairness:8.3f}   (lower = counterfactually fairer)",
            f"  consistency (k-NN)  {result.consistency_fairwos:8.3f}   "
            f"{result.consistency_no_fairness:8.3f}   (higher = individually fairer)",
            f"  group ΔSP           {result.group_dsp_fairwos:8.3f}   "
            f"{result.group_dsp_no_fairness:8.3f}",
        ]
    )
