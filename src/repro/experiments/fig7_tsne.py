"""Fig. 7 — t-SNE visualisation of the pseudo-sensitive attributes (RQ5).

Trains Fairwos, extracts the pseudo-sensitive attributes of the *test*
nodes (matching the paper's assumption that sensitive attributes are
accessible only at test time), embeds them with t-SNE and quantifies how
much the 2-D embedding separates the true sensitive groups.

Separation is measured two ways:

* silhouette-style score of the embedding under the sensitive grouping, and
* a 1-nearest-neighbour "leakage" accuracy (how well s is predictable from
  the embedding) vs the majority-group base rate.

The paper's qualitative claim is "some separation between clusters" — i.e.
leakage above base rate but far from perfect.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis import tsne
from repro.core import FairwosConfig, FairwosTrainer
from repro.datasets import load_dataset
from repro.experiments.methods import FAIRWOS_OVERRIDES
from repro.experiments.scale import Scale

__all__ = ["Fig7Result", "run_fig7", "format_fig7", "knn_leakage", "silhouette"]


def silhouette(points: np.ndarray, groups: np.ndarray) -> float:
    """Mean silhouette coefficient of a 2-group labelling (exact, O(N²))."""
    points = np.asarray(points, dtype=np.float64)
    groups = np.asarray(groups)
    unique = np.unique(groups)
    if unique.size < 2:
        raise ValueError("silhouette needs at least two groups")
    norms = (points**2).sum(axis=1)
    distances = np.sqrt(
        np.maximum(norms[:, None] + norms[None, :] - 2.0 * points @ points.T, 0.0)
    )
    scores = np.zeros(len(points))
    for i in range(len(points)):
        same = groups == groups[i]
        same[i] = False
        if not same.any():
            continue
        a = distances[i][same].mean()
        b = min(
            distances[i][groups == g].mean() for g in unique if g != groups[i]
        )
        scores[i] = (b - a) / max(a, b) if max(a, b) > 0 else 0.0
    return float(scores.mean())


def knn_leakage(points: np.ndarray, groups: np.ndarray) -> float:
    """1-NN accuracy of predicting the group from the embedding."""
    points = np.asarray(points, dtype=np.float64)
    groups = np.asarray(groups)
    norms = (points**2).sum(axis=1)
    distances = norms[:, None] + norms[None, :] - 2.0 * points @ points.T
    np.fill_diagonal(distances, np.inf)
    nearest = distances.argmin(axis=1)
    return float((groups[nearest] == groups).mean())


@dataclass
class Fig7Result:
    """t-SNE coordinates + separation scores for one dataset."""

    dataset: str
    embedding: np.ndarray
    sensitive: np.ndarray
    silhouette_score: float
    leakage: float
    base_rate: float


def run_fig7(
    dataset: str = "nba",
    seed: int = 0,
    scale: Scale | None = None,
    tsne_iterations: int = 300,
) -> Fig7Result:
    """Train Fairwos and embed the test nodes' pseudo-sensitive attributes."""
    scale = scale or Scale.quick()
    graph = load_dataset(dataset, seed=seed)
    overrides = FAIRWOS_OVERRIDES.get(dataset, FAIRWOS_OVERRIDES["default"])
    config = FairwosConfig(
        encoder_epochs=scale.epochs,
        classifier_epochs=scale.epochs,
        finetune_epochs=scale.finetune_epochs,
        patience=scale.patience,
        **overrides,
    )
    fit = FairwosTrainer(config).fit(graph, seed=seed)
    test_attrs = fit.pseudo_attributes[graph.test_mask]
    test_sensitive = graph.sensitive[graph.test_mask]
    rng = np.random.default_rng(seed)
    embedding = tsne(test_attrs, rng, iterations=tsne_iterations)
    majority = max(test_sensitive.mean(), 1.0 - test_sensitive.mean())
    return Fig7Result(
        dataset=dataset,
        embedding=embedding,
        sensitive=test_sensitive,
        silhouette_score=silhouette(embedding, test_sensitive),
        leakage=knn_leakage(embedding, test_sensitive),
        base_rate=float(majority),
    )


def format_fig7(result: Fig7Result) -> str:
    """Summarise the visualisation with its separation statistics."""
    return (
        f"Fig. 7 ({result.dataset}): t-SNE of pseudo-sensitive attributes, "
        f"{len(result.embedding)} test nodes\n"
        f"  group separation: silhouette {result.silhouette_score:+.3f}, "
        f"1-NN leakage {100 * result.leakage:.1f}% "
        f"(majority base rate {100 * result.base_rate:.1f}%)\n"
        "  expectation: leakage above base rate — pseudo-sensitive "
        "attributes capture aspects of the hidden sensitive attribute"
    )
