"""Experiment harness — one module per table / figure of the paper.

Every experiment exposes a ``run_*`` function returning plain data
structures and a ``format_*`` function rendering the same rows/series the
paper reports.  The benchmarks under ``benchmarks/`` call these with a
reduced :class:`Scale`; pass ``Scale.paper()`` for full-fidelity runs.
"""

from repro.experiments.scale import Scale
from repro.experiments.methods import (
    FAIRWOS_OVERRIDES,
    available_methods,
    run_method,
)
from repro.experiments.table1_datasets import format_table1, run_table1
from repro.experiments.table2 import format_table2, run_table2
from repro.experiments.linkpred import make_link_split, run_linkpred_method
from repro.experiments.scenario import (
    Scenario,
    ScenarioCellResult,
    format_scenario_matrix,
    run_scenario_cell,
    run_scenario_matrix,
    run_scenario_method,
)
from repro.experiments.fig4_ablation import format_fig4, run_fig4
from repro.experiments.fig5_encoder_dim import format_fig5, run_fig5
from repro.experiments.fig6_hyperparam import format_fig6, run_fig6
from repro.experiments.fig7_tsne import format_fig7, run_fig7
from repro.experiments.fig8_runtime import format_fig8, run_fig8
from repro.experiments.ext_backbones import format_ext_backbones, run_ext_backbones
from repro.experiments.ext_oracle import format_ext_oracle, run_ext_oracle
from repro.experiments.stats import (
    bootstrap_mean_ci,
    dominates,
    paired_permutation_test,
)
from repro.experiments.ext_cf_fairness import (
    format_ext_cf_fairness,
    run_ext_cf_fairness,
)

__all__ = [
    "Scale",
    "FAIRWOS_OVERRIDES",
    "available_methods",
    "run_method",
    "run_table1",
    "format_table1",
    "run_table2",
    "format_table2",
    "make_link_split",
    "run_linkpred_method",
    "Scenario",
    "ScenarioCellResult",
    "run_scenario_method",
    "run_scenario_cell",
    "run_scenario_matrix",
    "format_scenario_matrix",
    "run_fig4",
    "format_fig4",
    "run_fig5",
    "format_fig5",
    "run_fig6",
    "format_fig6",
    "run_fig7",
    "format_fig7",
    "run_fig8",
    "format_fig8",
    "run_ext_backbones",
    "format_ext_backbones",
    "run_ext_oracle",
    "format_ext_oracle",
    "run_ext_cf_fairness",
    "format_ext_cf_fairness",
    "bootstrap_mean_ci",
    "paired_permutation_test",
    "dominates",
]
