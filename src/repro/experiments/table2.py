"""Table II — main comparison: six methods × {GCN, GIN} × six datasets.

For every (dataset, backbone, method) cell the harness repeats training over
``scale.seeds`` seeds and reports mean ± std of ACC / ΔSP / ΔEO, exactly the
quantity the paper tabulates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.aggregate import MetricSummary
from repro.experiments.methods import METHOD_ORDER, display_name
from repro.experiments.scale import Scale
from repro.experiments.scenario import Scenario, run_scenario_cell

__all__ = ["Table2Result", "run_table2", "format_table2", "PAPER_TABLE2_GCN"]

# Paper values (GCN backbone) as (ACC, ΔSP, ΔEO) for the shape comparison in
# EXPERIMENTS.md: vanilla and Fairwos rows of Table II.
PAPER_TABLE2_GCN: dict[str, dict[str, tuple[float, float, float]]] = {
    "bail": {"vanilla": (83.89, 5.69, 3.42), "fairwos": (86.56, 5.06, 3.91)},
    "credit": {"vanilla": (73.77, 11.63, 9.58), "fairwos": (73.54, 9.22, 7.55)},
    "pokec_z": {"vanilla": (69.74, 8.11, 6.41), "fairwos": (70.60, 5.03, 4.96)},
    "pokec_n": {"vanilla": (68.88, 1.39, 2.57), "fairwos": (70.44, 1.25, 1.83)},
    "nba": {"vanilla": (66.38, 28.34, 23.70), "fairwos": (68.22, 10.16, 7.16)},
    "occupation": {"vanilla": (81.99, 28.56, 17.10), "fairwos": (81.76, 25.16, 13.34)},
}


@dataclass
class Table2Result:
    """Nested summaries: ``cells[(dataset, backbone, method)]``."""

    datasets: list[str]
    backbones: list[str]
    methods: list[str]
    cells: dict[tuple[str, str, str], MetricSummary] = field(default_factory=dict)

    def get(self, dataset: str, backbone: str, method: str) -> MetricSummary:
        """Summary for one table cell."""
        return self.cells[(dataset, backbone, method)]


def run_table2(
    datasets: list[str] | None = None,
    backbones: list[str] | None = None,
    methods: list[str] | None = None,
    scale: Scale | None = None,
) -> Table2Result:
    """Run the Table II grid and aggregate over seeds.

    Each (dataset, backbone) pair is one node-classification scenario cell
    run through :func:`~repro.experiments.scenario.run_scenario_cell`; the
    shared runner preserves this harness's historical loop order (method
    outer, seed inner, graph re-loaded per run), so results are unchanged.
    """
    datasets = datasets or ["bail", "credit", "pokec_z", "pokec_n", "nba", "occupation"]
    backbones = backbones or ["gcn", "gin"]
    methods = methods or list(METHOD_ORDER)
    scale = scale or Scale.quick()
    result = Table2Result(datasets=datasets, backbones=backbones, methods=methods)
    for dataset in datasets:
        for backbone in backbones:
            cell = run_scenario_cell(
                Scenario(dataset=dataset),
                methods=methods,
                backbone=backbone,
                scale=scale,
            )
            for method in methods:
                result.cells[(dataset, backbone, method)] = cell.summaries[method]
    return result


def format_table2(result: Table2Result) -> str:
    """Render the grid in the paper's layout (method rows per backbone)."""
    lines = ["Table II: node classification — ACC(↑)  ΔSP(↓)  ΔEO(↓), % mean±std"]
    for dataset in result.datasets:
        lines.append(f"\n=== {dataset} ===")
        for backbone in result.backbones:
            lines.append(f"  [{backbone.upper()}]")
            for method in result.methods:
                summary = result.get(dataset, backbone, method)
                lines.append(f"    {display_name(method):12s} {summary.row()}")
    return "\n".join(lines)
