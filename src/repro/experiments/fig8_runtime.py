"""Fig. 8 — runtime comparison (RQ6) on the NBA dataset.

Measures mean wall-clock training time of every baseline, Fairwos, and the
three Fairwos ablation variants, over repeated runs.  Expected shape per the
paper: RemoveR fastest; KSMOTE/FairRF comparable to Fairwos; FairGKD slower
(two extra teachers); ``Fwos w/o E`` slower than full Fairwos (fairness is
promoted on every raw attribute); ``w/o F`` and ``w/o W`` faster than full
Fairwos.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets import load_dataset
from repro.experiments.fig4_ablation import run_variant
from repro.experiments.methods import display_name, run_method
from repro.experiments.scale import Scale

__all__ = ["Fig8Result", "run_fig8", "format_fig8", "RUNTIME_ENTRIES"]

RUNTIME_ENTRIES = [
    "vanilla",
    "remover",
    "ksmote",
    "fairrf",
    "fairgkd",
    "fwos_wo_w",
    "fwos_wo_e",
    "fwos_wo_f",
    "fairwos",
]

_VARIANTS = {"fwos_wo_w", "fwos_wo_e", "fwos_wo_f"}
_VARIANT_DISPLAY = {
    "fwos_wo_w": "Fwos w/o W",
    "fwos_wo_e": "Fwos w/o E",
    "fwos_wo_f": "Fwos w/o F",
}


@dataclass
class Fig8Result:
    """Mean ± std seconds per entry."""

    dataset: str
    backbone: str
    seconds_mean: dict[str, float] = field(default_factory=dict)
    seconds_std: dict[str, float] = field(default_factory=dict)


def run_fig8(
    dataset: str = "nba",
    backbone: str = "gcn",
    scale: Scale | None = None,
    entries: list[str] | None = None,
) -> Fig8Result:
    """Time every method/variant over ``scale.seeds`` runs."""
    scale = scale or Scale.quick()
    entries = entries or list(RUNTIME_ENTRIES)
    result = Fig8Result(dataset=dataset, backbone=backbone)
    for entry in entries:
        times = []
        for seed in range(scale.seeds):
            if entry in _VARIANTS:
                run = run_variant(entry, dataset, backbone, seed, scale)
            elif entry == "fairwos":
                run = run_variant("fairwos", dataset, backbone, seed, scale)
            else:
                graph = load_dataset(dataset, seed=seed)
                run = run_method(
                    entry,
                    graph,
                    backbone=backbone,
                    seed=seed,
                    epochs=scale.epochs,
                    finetune_epochs=scale.finetune_epochs,
                    patience=scale.patience,
                )
            times.append(run.seconds)
        result.seconds_mean[entry] = float(np.mean(times))
        result.seconds_std[entry] = float(np.std(times))
    return result


def format_fig8(result: Fig8Result) -> str:
    """Render the runtime bars."""
    lines = [
        f"Fig. 8: mean training time on {result.dataset} "
        f"({result.backbone.upper()}), seconds"
    ]
    for entry, mean in result.seconds_mean.items():
        label = (
            _VARIANT_DISPLAY[entry]
            if entry in _VARIANT_DISPLAY
            else ("Fairwos" if entry == "fairwos" else display_name(entry))
        )
        std = result.seconds_std[entry]
        lines.append(f"  {label:12s} {mean:7.2f} ± {std:5.2f}")
    return "\n".join(lines)
