"""Link prediction — the second task kind of the scenario matrix.

Reuses the existing stack end to end: a :mod:`repro.gnnzoo` backbone embeds
nodes, edges are scored by the inner product of their endpoint embeddings,
and training runs through :class:`~repro.training.engine.MinibatchEngine`'s
closure hooks — the iterated "nodes" are *edge ids*, a ``seed_fn`` expands
each edge batch into its (sorted, unique) endpoint node set, and the loss
closure gathers endpoint rows from the ``forward="embed"`` output.

Fairness is dyadic: an edge is *intra-group* when its endpoints share the
sensitive attribute and *cross-group* otherwise, so ΔSP is the gap in
predicted-link rates between intra and cross edges (a link predictor that
reinforces homophily scores intra edges systematically higher) and ΔEO the
same gap restricted to true edges.  The existing
:func:`~repro.fairness.evaluation.evaluate_predictions` applies verbatim
with edges in place of nodes.

Every Table-II method has a link-prediction variant under the same
no-sensitive-attribute-at-training contract as :mod:`repro.baselines`:
``vanilla`` (plain BCE), ``remover`` (proxy columns dropped), ``ksmote``
(k-means pseudo-groups; minority-dyad positive edges oversampled),
``fairrf`` (squared intra/cross mean-score gap over *proxy* dyads),
``fairgkd`` (distillation toward a feature-only cosine teacher) and
``fairwos`` (counterfactual twins from
:class:`~repro.core.counterfactual.CounterfactualSearch`; each edge's score
is pulled toward its twin edge's score).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.analysis import kmeans
from repro.baselines.base import MethodResult
from repro.core import ExecutionConfig
from repro.core.counterfactual import CounterfactualSearch
from repro.fairness import evaluate_predictions
from repro.gnnzoo import make_backbone
from repro.graph import Graph
from repro.nn import binary_cross_entropy_with_logits, mse_loss
from repro.tensor import backend_scope, dtype_scope, ops
from repro.training import MinibatchEngine, embed_batched

__all__ = [
    "EdgeSet",
    "LinkSplit",
    "make_link_split",
    "edge_dyad_groups",
    "run_linkpred_method",
]


@dataclass(frozen=True)
class EdgeSet:
    """Aligned arrays of candidate edges: endpoints and 0/1 existence labels."""

    src: np.ndarray
    dst: np.ndarray
    labels: np.ndarray

    @property
    def num_edges(self) -> int:
        return int(self.src.size)


@dataclass(frozen=True)
class LinkSplit:
    """Train/val/test edge sets plus the leakage-free training graph.

    ``train_adjacency`` contains only the train positive edges — message
    passing during training and scoring never sees a held-out edge.
    """

    train_adjacency: sp.csr_matrix
    train: EdgeSet
    val: EdgeSet
    test: EdgeSet


def edge_dyad_groups(sensitive: np.ndarray, edges: EdgeSet) -> np.ndarray:
    """1 for intra-group (same-sensitive endpoints) edges, 0 for cross."""
    sensitive = np.asarray(sensitive)
    return (sensitive[edges.src] == sensitive[edges.dst]).astype(np.int64)


def _sample_negative_keys(
    num: int,
    positive_keys: np.ndarray,
    num_nodes: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """``num`` unique canonical non-edge keys (``lo * n + hi``, lo < hi)."""
    collected = np.empty(0, dtype=np.int64)
    while collected.size < num:
        draw = int((num - collected.size) * 1.5) + 8
        a = rng.integers(num_nodes, size=draw)
        b = rng.integers(num_nodes, size=draw)
        lo, hi = np.minimum(a, b), np.maximum(a, b)
        keys = lo.astype(np.int64) * num_nodes + hi
        keys = keys[lo != hi]
        pos = np.searchsorted(positive_keys, keys)
        pos = np.clip(pos, 0, positive_keys.size - 1)
        keys = keys[positive_keys[pos] != keys]
        collected = np.unique(np.concatenate([collected, keys]))
    return collected[rng.permutation(collected.size)][:num]


def make_link_split(
    graph: Graph,
    seed: int = 0,
    val_fraction: float = 0.15,
    test_fraction: float = 0.15,
) -> LinkSplit:
    """Split ``graph``'s edges into train/val/test with matched negatives.

    Undirected edges are shuffled and partitioned; each partition is paired
    with an equal number of uniformly sampled non-edges (sampled against
    the *full* edge set, so a negative is a true non-edge everywhere).  The
    returned training adjacency keeps only train positives.
    """
    if not 0 < val_fraction + test_fraction < 1:
        raise ValueError(
            f"val_fraction + test_fraction must be in (0, 1), got "
            f"{val_fraction + test_fraction}"
        )
    rng = np.random.default_rng(seed)
    coo = graph.adjacency.tocoo()
    upper = coo.row < coo.col
    lo = coo.row[upper].astype(np.int64)
    hi = coo.col[upper].astype(np.int64)
    num_edges = lo.size
    if num_edges < 10:
        raise ValueError(f"need at least 10 undirected edges, got {num_edges}")
    n = graph.num_nodes
    positive_keys = np.sort(lo * n + hi)

    order = rng.permutation(num_edges)
    n_val = max(1, int(round(val_fraction * num_edges)))
    n_test = max(1, int(round(test_fraction * num_edges)))
    test_ids = order[:n_test]
    val_ids = order[n_test : n_test + n_val]
    train_ids = order[n_test + n_val :]

    def build(ids: np.ndarray) -> EdgeSet:
        neg = _sample_negative_keys(ids.size, positive_keys, n, rng)
        src = np.concatenate([lo[ids], neg // n])
        dst = np.concatenate([hi[ids], neg % n])
        labels = np.concatenate(
            [np.ones(ids.size, dtype=np.int64), np.zeros(neg.size, dtype=np.int64)]
        )
        return EdgeSet(src=src, dst=dst, labels=labels)

    train, val, test = build(train_ids), build(val_ids), build(test_ids)
    rows = np.concatenate([lo[train_ids], hi[train_ids]])
    cols = np.concatenate([hi[train_ids], lo[train_ids]])
    train_adjacency = sp.csr_matrix(
        (np.ones(rows.size), (rows, cols)), shape=(n, n)
    )
    return LinkSplit(
        train_adjacency=train_adjacency, train=train, val=val, test=test
    )


def _proxy_column(graph: Graph, features: np.ndarray) -> np.ndarray:
    """Binary per-node proxy group from the strongest related feature.

    The no-sensitive-attribute training contract: fairness terms may only
    see *related features* (the FairRF assumption), never ``graph.sensitive``.
    Falls back to the first column when the graph declares no related set.
    """
    if graph.related_feature_indices.size:
        column = features[:, int(graph.related_feature_indices[0])]
    else:
        column = features[:, 0]
    return (column > np.median(column)).astype(np.int64)


def _edge_scores(embeddings: np.ndarray, edges: EdgeSet) -> np.ndarray:
    return (embeddings[edges.src] * embeddings[edges.dst]).sum(axis=1)


def run_linkpred_method(
    method: str,
    graph: Graph,
    backbone: str = "gcn",
    seed: int = 0,
    epochs: int = 100,
    execution: ExecutionConfig | None = None,
    hidden_dim: int = 16,
    lr: float = 1e-3,
    fairness_weight: float = 1.0,
    split: LinkSplit | None = None,
) -> MethodResult:
    """Train one method's link-prediction variant and evaluate it.

    The link-prediction counterpart of
    :func:`repro.experiments.methods.run_method`: same method keys, same
    :class:`~repro.baselines.base.MethodResult` shape, but the evaluation
    triple is dyadic (see the module docstring).  The edge split derives
    deterministically from ``(graph, seed)`` unless ``split`` is supplied.

    Parameters
    ----------
    method:
        One of the six Table-II method keys.
    graph:
        Dataset; its sensitive attribute is used only for evaluation.
    backbone, seed, epochs, execution:
        As in ``run_method`` (``execution`` supplies fanouts / batch size /
        dtype / backend; sampled defaults otherwise).
    hidden_dim, lr:
        Embedding recipe (paper defaults).
    fairness_weight:
        Weight of the method-specific fairness term (fairrf / fairgkd /
        fairwos).
    split:
        Optional pre-built edge split shared across methods of one cell.
    """
    key = method.lower()
    display = {
        "vanilla": "Vanilla\\S",
        "remover": "RemoveR",
        "ksmote": "KSMOTE",
        "fairrf": "FairRF",
        "fairgkd": "FairGKD\\S",
        "fairwos": "Fairwos",
    }
    if key not in display:
        raise ValueError(f"unknown method {method!r}; choose from {sorted(display)}")
    if execution is None:
        execution = ExecutionConfig()
    execution.validate()
    if split is None:
        split = make_link_split(graph, seed=seed)

    start = time.perf_counter()
    with backend_scope(execution.backend), dtype_scope(execution.dtype):
        features = graph.features
        extra: dict = {}
        if key == "remover" and graph.related_feature_indices.size:
            keep = np.setdiff1d(
                np.arange(graph.num_features), graph.related_feature_indices
            )
            features = features[:, keep]
            extra["removed_columns"] = int(graph.related_feature_indices.size)

        rng = np.random.default_rng(seed)
        num_layers = len(execution.fanouts) if execution.fanouts else 1
        model = make_backbone(
            backbone, features.shape[1], hidden_dim, rng, num_layers=num_layers
        )

        src = split.train.src.copy()
        dst = split.train.dst.copy()
        labels = split.train.labels.copy()
        if key == "ksmote":
            # Pseudo-group dyads from k-means clusters; duplicate the
            # minority dyad's *positive* edges so training sees balanced
            # intra/cross link evidence (the class-balancing idea of KSMOTE
            # carried to edges).
            clusters, _, _ = kmeans(features, 4, rng)
            dyad = (clusters[src] == clusters[dst]) & (labels == 1)
            cross = (~(clusters[src] == clusters[dst])) & (labels == 1)
            minority = dyad if dyad.sum() < cross.sum() else cross
            deficit = int(abs(int(dyad.sum()) - int(cross.sum())))
            if minority.any() and deficit:
                picks = rng.choice(np.flatnonzero(minority), size=deficit)
                src = np.concatenate([src, src[picks]])
                dst = np.concatenate([dst, dst[picks]])
                labels = np.concatenate([labels, labels[picks]])
                extra["oversampled_edges"] = deficit

        proxy = _proxy_column(graph, features) if key == "fairrf" else None
        teacher = None
        if key == "fairgkd":
            # Feature-only cosine teacher: no structure, so its scores carry
            # none of the homophily amplified by message passing.
            norms = np.linalg.norm(features, axis=1, keepdims=True)
            unit = features / np.maximum(norms, 1e-12)
            teacher = 4.0 * (unit[src] * unit[dst]).sum(axis=1)

        twin = None
        if key == "fairwos":
            attrs = _proxy_column(graph, features)[:, None]
            search = CounterfactualSearch(top_k=1, backend=execution.cf_backend)
            index = search.search(
                features, np.zeros(graph.num_nodes, dtype=np.int64), attrs
            )
            twin = index.indices[0, :, 0]
            extra["counterfactual_coverage"] = float(index.valid.mean())

        float_labels = labels.astype(np.float64)

        def seed_fn(batch: np.ndarray, _rng: np.random.Generator):
            endpoints = [src[batch], dst[batch]]
            if twin is not None:
                endpoints += [twin[src[batch]], twin[dst[batch]]]
            return np.unique(np.concatenate(endpoints)), None

        def loss_fn(step):
            emb = step.output
            u = ops.gather(emb, step.local_index(src[step.batch]))
            v = ops.gather(emb, step.local_index(dst[step.batch]))
            score = (u * v).sum(axis=1)
            loss = binary_cross_entropy_with_logits(score, float_labels[step.batch])
            if proxy is not None:
                same = proxy[src[step.batch]] == proxy[dst[step.batch]]
                if same.any() and (~same).any():
                    gap = (
                        ops.gather(score, np.flatnonzero(same)).mean()
                        - ops.gather(score, np.flatnonzero(~same)).mean()
                    )
                    loss = loss + fairness_weight * gap * gap
            if teacher is not None:
                loss = loss + fairness_weight * mse_loss(
                    score, teacher[step.batch]
                )
            if twin is not None:
                tu = ops.gather(emb, step.local_index(twin[src[step.batch]]))
                tv = ops.gather(emb, step.local_index(twin[dst[step.batch]]))
                twin_score = (tu * tv).sum(axis=1)
                loss = loss + fairness_weight * mse_loss(score, twin_score.detach())
            return loss

        engine = MinibatchEngine(
            model,
            features,
            split.train_adjacency,
            fanouts=execution.fanouts,
            batch_size=execution.batch_size,
            num_layers=num_layers,
            cache_epochs=execution.cache_epochs,
            lr=lr,
        )
        val_nodes = np.flatnonzero(graph.val_mask)
        # The engine's validation pass scores *node* logits — a proxy metric
        # for LP, so run in "floor" mode with the floor disabled: fixed
        # epoch budget, final state kept, no node-metric model selection.
        engine.run(
            np.arange(src.size, dtype=np.int64),
            epochs,
            loss_fn,
            rng,
            val_nodes=val_nodes,
            val_labels=graph.labels[val_nodes],
            checkpoint="floor",
            val_tolerance=None,
            forward="embed",
            seed_fn=seed_fn,
        )
        embeddings = embed_batched(model, features, split.train_adjacency)
    seconds = time.perf_counter() - start

    test_eval = evaluate_predictions(
        _edge_scores(embeddings, split.test),
        split.test.labels,
        edge_dyad_groups(graph.sensitive, split.test),
    )
    val_eval = evaluate_predictions(
        _edge_scores(embeddings, split.val),
        split.val.labels,
        edge_dyad_groups(graph.sensitive, split.val),
    )
    return MethodResult(
        method=display[key],
        test=test_eval,
        validation=val_eval,
        seconds=seconds,
        extra=extra,
    )
