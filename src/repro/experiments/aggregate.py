"""Aggregation helpers shared by the experiment modules."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import MethodResult

__all__ = ["MetricSummary", "summarize"]


@dataclass(frozen=True)
class MetricSummary:
    """Mean ± std of the (ACC, ΔSP, ΔEO) triple over repeated runs.

    Values are percentages, matching the units of the paper's tables.
    """

    acc_mean: float
    acc_std: float
    dsp_mean: float
    dsp_std: float
    deo_mean: float
    deo_std: float
    runs: int

    def row(self) -> str:
        """One formatted table cell group: ACC / ΔSP / ΔEO with stds."""
        return (
            f"{self.acc_mean:5.2f}±{self.acc_std:4.2f}  "
            f"{self.dsp_mean:5.2f}±{self.dsp_std:4.2f}  "
            f"{self.deo_mean:5.2f}±{self.deo_std:4.2f}"
        )


def summarize(results: list[MethodResult]) -> MetricSummary:
    """Aggregate repeated runs of one method into a :class:`MetricSummary`."""
    if not results:
        raise ValueError("cannot summarize zero runs")
    accs = np.array([100.0 * r.test.accuracy for r in results])
    dsps = np.array([100.0 * r.test.delta_sp for r in results])
    deos = np.array([100.0 * r.test.delta_eo for r in results])
    return MetricSummary(
        acc_mean=float(accs.mean()),
        acc_std=float(accs.std()),
        dsp_mean=float(dsps.mean()),
        dsp_std=float(dsps.std()),
        deo_mean=float(deos.mean()),
        deo_std=float(deos.std()),
        runs=len(results),
    )
