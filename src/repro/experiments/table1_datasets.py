"""Table I — dataset statistics.

Prints the published statistics next to the generated graphs' realised
statistics so the calibration is auditable.
"""

from __future__ import annotations

from repro.datasets import available_datasets, dataset_statistics_rows, load_dataset
from repro.graph.utils import edge_homophily

__all__ = ["run_table1", "format_table1"]


def run_table1(seed: int = 0) -> list[dict[str, object]]:
    """Generate every dataset once and collect paper-vs-realised statistics."""
    paper_rows = {row["dataset"]: row for row in dataset_statistics_rows()}
    rows: list[dict[str, object]] = []
    for name in available_datasets():
        graph = load_dataset(name, seed=seed)
        paper = paper_rows[name]
        rows.append(
            {
                "dataset": name,
                "paper_nodes": paper["paper_nodes"],
                "nodes": graph.num_nodes,
                "attributes": graph.num_features,
                "paper_avg_degree": paper["paper_avg_degree"],
                "avg_degree": graph.average_degree,
                "edges": graph.num_edges,
                "sensitive": paper["sensitive"],
                "label": paper["label"],
                "positive_rate": float(graph.labels.mean()),
                "group_balance": float(graph.sensitive.mean()),
                "sens_homophily": edge_homophily(graph.adjacency, graph.sensitive),
            }
        )
    return rows


def format_table1(rows: list[dict[str, object]]) -> str:
    """Render the Table I comparison as text."""
    lines = [
        "Table I: dataset statistics (paper → generated synthetic equivalent)",
        f"{'dataset':12s} {'N(paper)':>9s} {'N':>6s} {'#attr':>6s} "
        f"{'deg(paper)':>10s} {'deg':>6s} {'#edges':>8s} {'P(y=1)':>7s} "
        f"{'P(s=1)':>7s} {'s-homo':>7s}  sensitive",
    ]
    for row in rows:
        lines.append(
            f"{row['dataset']:12s} {row['paper_nodes']:>9,d} {row['nodes']:>6d} "
            f"{row['attributes']:>6d} {row['paper_avg_degree']:>10.2f} "
            f"{row['avg_degree']:>6.2f} {row['edges']:>8,d} "
            f"{row['positive_rate']:>7.2f} {row['group_balance']:>7.2f} "
            f"{row['sens_homophily']:>7.2f}  {row['sensitive']}"
        )
    return "\n".join(lines)
