"""Fig. 6 — hyper-parameter sensitivity (RQ4): α × K grid on Bail.

The paper varies α over {0.01, 0.02, 0.04, 0.08} and K over {1, 2, 3, 4}
around its selected operating point and reports ACC / ΔEO / ΔSP surfaces.
Expected shape: both fairness metrics improve as α and K grow; too-large
values start to cost utility.

Because our substrate's effective α scale differs (see DESIGN.md), the
default grid is expressed as multipliers of the dataset's selected α.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import FairwosConfig, FairwosTrainer
from repro.datasets import load_dataset
from repro.experiments.aggregate import MetricSummary, summarize
from repro.experiments.methods import FAIRWOS_OVERRIDES
from repro.experiments.scale import Scale
from repro.baselines.base import MethodResult

__all__ = ["Fig6Result", "run_fig6", "format_fig6"]


@dataclass
class Fig6Result:
    """Summaries keyed by ``(alpha, k)``."""

    dataset: str
    alphas: list[float]
    ks: list[int]
    cells: dict[tuple[float, int], MetricSummary] = field(default_factory=dict)


def run_fig6(
    dataset: str = "bail",
    alphas: list[float] | None = None,
    ks: list[int] | None = None,
    scale: Scale | None = None,
) -> Fig6Result:
    """Run the α × K sensitivity grid."""
    base = FAIRWOS_OVERRIDES.get(dataset, FAIRWOS_OVERRIDES["default"])
    alphas = alphas or [0.0, 0.5 * base["alpha"], base["alpha"], 2.0 * base["alpha"]]
    ks = ks or [1, 2, 3, 4]
    scale = scale or Scale.quick()
    result = Fig6Result(dataset=dataset, alphas=alphas, ks=ks)
    for alpha in alphas:
        for k in ks:
            runs: list[MethodResult] = []
            for seed in range(scale.seeds):
                graph = load_dataset(dataset, seed=seed)
                config = FairwosConfig(
                    alpha=alpha,
                    top_k=k,
                    finetune_learning_rate=base["finetune_learning_rate"],
                    encoder_epochs=scale.epochs,
                    classifier_epochs=scale.epochs,
                    finetune_epochs=scale.finetune_epochs,
                    patience=scale.patience,
                    use_fairness=alpha > 0,
                )
                fit = FairwosTrainer(config).fit(graph, seed=seed)
                runs.append(
                    MethodResult(
                        method=f"alpha={alpha},K={k}",
                        test=fit.test,
                        validation=fit.validation,
                        seconds=fit.total_seconds,
                    )
                )
            result.cells[(alpha, k)] = summarize(runs)
    return result


def format_fig6(result: Fig6Result) -> str:
    """Render the three surfaces (ACC, ΔEO, ΔSP) as grids."""
    lines = [f"Fig. 6: hyper-parameter study on {result.dataset} (%, mean)"]
    for metric, attr in (("ACC", "acc_mean"), ("ΔEO", "deo_mean"), ("ΔSP", "dsp_mean")):
        lines.append(f"\n{metric}:")
        header = "  alpha\\K " + "".join(f"{k:>8d}" for k in result.ks)
        lines.append(header)
        for alpha in result.alphas:
            row = f"  {alpha:7.3f} "
            for k in result.ks:
                row += f"{getattr(result.cells[(alpha, k)], attr):8.2f}"
            lines.append(row)
    return "\n".join(lines)
