"""Extension experiment: Fairwos vs sensitive-attribute-using oracles.

Places Fairwos (no sensitive attributes) next to NIFTY and FairGNN (full
sensitive-attribute access) plus the vanilla backbone.  The interesting
questions: how close does Fairwos get to — or how far does it surpass —
methods that see the protected attribute, and does NIFTY's bit-flip
counterfactual reproduce the paper's non-realistic-counterfactual critique?
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines import Vanilla
from repro.baselines.base import MethodResult
from repro.baselines.oracle import FairGNN, NIFTY
from repro.core import FairwosConfig, FairwosTrainer
from repro.datasets import load_dataset
from repro.experiments.aggregate import MetricSummary, summarize
from repro.experiments.methods import FAIRWOS_OVERRIDES
from repro.experiments.scale import Scale

__all__ = ["OracleResult", "run_ext_oracle", "format_ext_oracle"]

ENTRIES = ["vanilla", "nifty", "fairgnn", "fairwos"]
_DISPLAY = {
    "vanilla": "Vanilla\\S",
    "nifty": "NIFTY (oracle)",
    "fairgnn": "FairGNN (oracle)",
    "fairwos": "Fairwos (no s)",
}


@dataclass
class OracleResult:
    """Summaries keyed by entry name."""

    dataset: str
    backbone: str
    cells: dict[str, MetricSummary] = field(default_factory=dict)


def run_ext_oracle(
    dataset: str = "nba",
    backbone: str = "gcn",
    scale: Scale | None = None,
    entries: list[str] | None = None,
) -> OracleResult:
    """Run the oracle-vs-Fairwos comparison."""
    scale = scale or Scale.quick()
    entries = entries or list(ENTRIES)
    overrides = FAIRWOS_OVERRIDES.get(dataset, FAIRWOS_OVERRIDES["default"])
    result = OracleResult(dataset=dataset, backbone=backbone)
    for entry in entries:
        runs: list[MethodResult] = []
        for seed in range(scale.seeds):
            graph = load_dataset(dataset, seed=seed)
            if entry == "vanilla":
                runs.append(
                    Vanilla(
                        backbone=backbone, epochs=scale.epochs,
                        patience=scale.patience,
                    ).fit(graph, seed=seed)
                )
            elif entry == "nifty":
                runs.append(
                    NIFTY(
                        backbone=backbone, epochs=scale.epochs,
                        patience=scale.patience,
                    ).fit(graph, seed=seed)
                )
            elif entry == "fairgnn":
                runs.append(
                    FairGNN(
                        backbone=backbone, epochs=scale.epochs,
                        patience=scale.patience,
                    ).fit(graph, seed=seed)
                )
            elif entry == "fairwos":
                config = FairwosConfig(
                    backbone=backbone,
                    encoder_epochs=scale.epochs,
                    classifier_epochs=scale.epochs,
                    finetune_epochs=scale.finetune_epochs,
                    patience=scale.patience,
                    **overrides,
                )
                fit = FairwosTrainer(config).fit(graph, seed=seed)
                runs.append(
                    MethodResult(
                        method="Fairwos",
                        test=fit.test,
                        validation=fit.validation,
                        seconds=fit.total_seconds,
                    )
                )
            else:
                raise ValueError(f"unknown entry {entry!r}")
        result.cells[entry] = summarize(runs)
    return result


def format_ext_oracle(result: OracleResult) -> str:
    """Render the oracle comparison."""
    lines = [
        f"Extension: oracle comparison on {result.dataset} "
        f"({result.backbone.upper()}) — ACC(↑)  ΔSP(↓)  ΔEO(↓), % mean±std",
        "  (oracles see the sensitive attribute; Fairwos does not)",
    ]
    for entry, summary in result.cells.items():
        lines.append(f"  {_DISPLAY[entry]:18s} {summary.row()}")
    return "\n".join(lines)
