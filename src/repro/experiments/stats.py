"""Statistical comparison utilities for experiment results.

The paper reports mean ± std over 10 runs but no significance analysis;
these helpers let the benchmark harness (and downstream users) make claims
like "Fairwos's ΔSP is lower than vanilla's" with quantified uncertainty:

* :func:`bootstrap_mean_ci` — percentile bootstrap CI of a mean;
* :func:`paired_permutation_test` — exact/Monte-Carlo sign-flip test for
  paired per-seed differences;
* :func:`dominates` — convenience decision: does method A beat method B on
  a metric at a given confidence?
"""

from __future__ import annotations

import numpy as np

__all__ = ["bootstrap_mean_ci", "paired_permutation_test", "dominates"]


def bootstrap_mean_ci(
    values: np.ndarray,
    confidence: float = 0.95,
    num_resamples: int = 10_000,
    seed: int = 0,
) -> tuple[float, float, float]:
    """Percentile-bootstrap confidence interval for the mean.

    Returns ``(mean, low, high)``.
    """
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if values.size == 0:
        raise ValueError("need at least one value")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    rng = np.random.default_rng(seed)
    resamples = rng.choice(values, size=(num_resamples, values.size), replace=True)
    means = resamples.mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return float(values.mean()), float(low), float(high)


def paired_permutation_test(
    a: np.ndarray,
    b: np.ndarray,
    num_permutations: int = 10_000,
    seed: int = 0,
) -> float:
    """Two-sided paired sign-flip permutation test.

    Tests H0: the per-pair differences ``a_i − b_i`` are symmetric around 0.
    With ≤ 20 pairs all ``2^n`` sign assignments are enumerated (exact
    p-value); otherwise ``num_permutations`` random flips are sampled.
    """
    a = np.asarray(a, dtype=np.float64).reshape(-1)
    b = np.asarray(b, dtype=np.float64).reshape(-1)
    if a.shape != b.shape:
        raise ValueError(f"paired arrays must match: {a.shape} vs {b.shape}")
    if a.size == 0:
        raise ValueError("need at least one pair")
    diffs = a - b
    observed = abs(diffs.mean())
    n = diffs.size
    if n <= 20:
        signs = np.array(
            [[1 if (mask >> i) & 1 else -1 for i in range(n)] for mask in range(2**n)]
        )
        stats = np.abs((signs * diffs).mean(axis=1))
        return float((stats >= observed - 1e-12).mean())
    rng = np.random.default_rng(seed)
    signs = rng.choice([-1.0, 1.0], size=(num_permutations, n))
    stats = np.abs((signs * diffs).mean(axis=1))
    # Add-one smoothing keeps the Monte-Carlo p-value away from exactly 0.
    return float((np.sum(stats >= observed - 1e-12) + 1) / (num_permutations + 1))


def dominates(
    a: np.ndarray,
    b: np.ndarray,
    alpha: float = 0.05,
    lower_is_better: bool = True,
) -> bool:
    """Does method A significantly beat method B on paired scores?

    True when the mean difference points the right way *and* the paired
    permutation test rejects equality at level ``alpha``.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    direction = a.mean() < b.mean() if lower_is_better else a.mean() > b.mean()
    if not direction:
        return False
    return paired_permutation_test(a, b) < alpha
