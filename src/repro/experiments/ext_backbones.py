"""Extension experiment: Fairwos across all four backbones.

The paper states "our proposed Fairwos is flexible for various backbones
such as GCN and GIN" and evaluates those two; this extension additionally
runs GAT and GraphSAGE (both named in the related work) to substantiate the
flexibility claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines import Vanilla
from repro.core import FairwosConfig, FairwosTrainer
from repro.datasets import load_dataset
from repro.experiments.aggregate import MetricSummary, summarize
from repro.experiments.methods import FAIRWOS_OVERRIDES
from repro.experiments.scale import Scale
from repro.baselines.base import MethodResult

__all__ = ["BackbonesResult", "run_ext_backbones", "format_ext_backbones"]

ALL_BACKBONES = ["gcn", "gin", "gat", "sage"]


@dataclass
class BackbonesResult:
    """Summaries keyed by ``(backbone, series)`` with series ∈ {gnn, fairwos}."""

    dataset: str
    backbones: list[str]
    cells: dict[tuple[str, str], MetricSummary] = field(default_factory=dict)


def run_ext_backbones(
    dataset: str = "nba",
    backbones: list[str] | None = None,
    scale: Scale | None = None,
) -> BackbonesResult:
    """Vanilla vs Fairwos for every backbone."""
    backbones = backbones or list(ALL_BACKBONES)
    scale = scale or Scale.quick()
    overrides = FAIRWOS_OVERRIDES.get(dataset, FAIRWOS_OVERRIDES["default"])
    result = BackbonesResult(dataset=dataset, backbones=backbones)
    for backbone in backbones:
        vanilla_runs, fairwos_runs = [], []
        for seed in range(scale.seeds):
            graph = load_dataset(dataset, seed=seed)
            vanilla_runs.append(
                Vanilla(
                    backbone=backbone, epochs=scale.epochs, patience=scale.patience
                ).fit(graph, seed=seed)
            )
            config = FairwosConfig(
                backbone=backbone,
                encoder_backbone="gcn",
                encoder_epochs=scale.epochs,
                classifier_epochs=scale.epochs,
                finetune_epochs=scale.finetune_epochs,
                patience=scale.patience,
                **overrides,
            )
            fit = FairwosTrainer(config).fit(graph, seed=seed)
            fairwos_runs.append(
                MethodResult(
                    method="Fairwos",
                    test=fit.test,
                    validation=fit.validation,
                    seconds=fit.total_seconds,
                )
            )
        result.cells[(backbone, "gnn")] = summarize(vanilla_runs)
        result.cells[(backbone, "fairwos")] = summarize(fairwos_runs)
    return result


def format_ext_backbones(result: BackbonesResult) -> str:
    """Render vanilla → Fairwos rows per backbone."""
    lines = [
        f"Extension: backbone flexibility on {result.dataset} — "
        "ACC(↑)  ΔSP(↓)  ΔEO(↓), % mean±std"
    ]
    for backbone in result.backbones:
        lines.append(f"\n=== {backbone.upper()} ===")
        lines.append(f"  {'GNN':8s} {result.cells[(backbone, 'gnn')].row()}")
        lines.append(f"  {'Fairwos':8s} {result.cells[(backbone, 'fairwos')].row()}")
    return "\n".join(lines)
