"""Fig. 5 — sensitivity to the encoder dimension (RQ3).

Sweeps the pseudo-sensitive attribute dimensionality over {2, 8, 16, 32} for
GCN and GIN backbones, comparing the backbone GNN, full Fairwos, and Fairwos
w/o F.  Expected shape: shrinking the dimension first keeps accuracy above
the backbone (denoising) and reduces bias, then collapses accuracy once too
much information is compressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines import Vanilla
from repro.core import FairwosConfig, FairwosTrainer
from repro.datasets import load_dataset
from repro.experiments.aggregate import MetricSummary, summarize
from repro.experiments.methods import FAIRWOS_OVERRIDES
from repro.experiments.scale import Scale
from repro.baselines.base import MethodResult

__all__ = ["Fig5Result", "run_fig5", "format_fig5"]

SERIES = ["gnn", "fairwos", "fwos_wo_f"]
_DISPLAY = {"gnn": "GNN", "fairwos": "Fairwos", "fwos_wo_f": "Fwos w/o F"}


@dataclass
class Fig5Result:
    """Summaries keyed by ``(backbone, series, dim)``; gnn ignores dim."""

    dataset: str
    dims: list[int]
    backbones: list[str]
    cells: dict[tuple[str, str, int], MetricSummary] = field(default_factory=dict)


def run_fig5(
    dataset: str = "nba",
    dims: list[int] | None = None,
    backbones: list[str] | None = None,
    scale: Scale | None = None,
) -> Fig5Result:
    """Sweep the encoder dimension."""
    dims = dims or [2, 8, 16, 32]
    backbones = backbones or ["gcn", "gin"]
    scale = scale or Scale.quick()
    overrides = FAIRWOS_OVERRIDES.get(dataset, FAIRWOS_OVERRIDES["default"])
    result = Fig5Result(dataset=dataset, dims=dims, backbones=backbones)
    for backbone in backbones:
        gnn_runs = []
        for seed in range(scale.seeds):
            graph = load_dataset(dataset, seed=seed)
            gnn_runs.append(
                Vanilla(
                    backbone=backbone, epochs=scale.epochs, patience=scale.patience
                ).fit(graph, seed=seed)
            )
        result.cells[(backbone, "gnn", 0)] = summarize(gnn_runs)
        for dim in dims:
            for series in ("fairwos", "fwos_wo_f"):
                runs: list[MethodResult] = []
                for seed in range(scale.seeds):
                    graph = load_dataset(dataset, seed=seed)
                    config = FairwosConfig(
                        backbone=backbone,
                        encoder_dim=dim,
                        encoder_epochs=scale.epochs,
                        classifier_epochs=scale.epochs,
                        finetune_epochs=scale.finetune_epochs,
                        patience=scale.patience,
                        use_fairness=(series == "fairwos"),
                        **overrides,
                    )
                    fit = FairwosTrainer(config).fit(graph, seed=seed)
                    runs.append(
                        MethodResult(
                            method=_DISPLAY[series],
                            test=fit.test,
                            validation=fit.validation,
                            seconds=fit.total_seconds,
                        )
                    )
                result.cells[(backbone, series, dim)] = summarize(runs)
    return result


def format_fig5(result: Fig5Result) -> str:
    """Render the dimension sweep as one row per (backbone, series, dim)."""
    lines = [
        f"Fig. 5: encoder-dimension sweep on {result.dataset} — "
        "ACC(↑)  ΔSP(↓)  ΔEO(↓), % mean±std"
    ]
    for backbone in result.backbones:
        lines.append(f"\n=== {backbone.upper()} ===")
        summary = result.cells[(backbone, "gnn", 0)]
        lines.append(f"  {'GNN (any dim)':16s} {summary.row()}")
        for series in ("fairwos", "fwos_wo_f"):
            for dim in result.dims:
                summary = result.cells[(backbone, series, dim)]
                label = f"{_DISPLAY[series]} d={dim}"
                lines.append(f"  {label:16s} {summary.row()}")
    return "\n".join(lines)
