"""Hyper-parameter selection for Fairwos (the paper's validation protocol).

Section V-A-4: "we vary α as {0.01, 0.05, 1, 2, 5} and K as {1, 2, 5, 10,
20} and the best model is saved based on the performance of the validation
dataset."  Crucially the selection criterion cannot use fairness — the
sensitive attribute is unavailable during training — so candidates are
ranked by **validation accuracy**, with the counterfactual disparity
``Σ λ_i D_i`` (a sensitive-attribute-free fairness proxy) breaking ties.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core import FairwosConfig, FairwosResult, FairwosTrainer
from repro.graph import Graph

__all__ = ["GridPoint", "GridSearchResult", "grid_search_fairwos"]

PAPER_ALPHA_GRID = (0.01, 0.05, 1.0, 2.0, 5.0)
PAPER_K_GRID = (1, 2, 5, 10, 20)


@dataclass(frozen=True)
class GridPoint:
    """One evaluated (α, K) candidate."""

    alpha: float
    top_k: int
    val_accuracy: float
    fair_proxy: float
    test_accuracy: float
    test_delta_sp: float
    test_delta_eo: float


@dataclass
class GridSearchResult:
    """All candidates plus the selected one."""

    points: list[GridPoint] = field(default_factory=list)
    best: GridPoint | None = None
    best_result: FairwosResult | None = None

    def render(self) -> str:
        """Table of candidates with the winner marked."""
        lines = ["Fairwos grid search (selected by val ACC, fairness-proxy tiebreak)"]
        lines.append(
            f"  {'alpha':>7s} {'K':>3s} {'valACC':>7s} {'proxy':>8s} "
            f"{'testACC':>8s} {'ΔSP':>6s} {'ΔEO':>6s}"
        )
        for point in self.points:
            marker = " ◀" if point is self.best else ""
            lines.append(
                f"  {point.alpha:7.2f} {point.top_k:3d} "
                f"{100 * point.val_accuracy:7.2f} {point.fair_proxy:8.4f} "
                f"{100 * point.test_accuracy:8.2f} "
                f"{100 * point.test_delta_sp:6.2f} "
                f"{100 * point.test_delta_eo:6.2f}{marker}"
            )
        return "\n".join(lines)


def grid_search_fairwos(
    graph: Graph,
    base_config: FairwosConfig | None = None,
    alphas: tuple[float, ...] = PAPER_ALPHA_GRID,
    ks: tuple[int, ...] = PAPER_K_GRID,
    seed: int = 0,
    accuracy_tolerance: float = 0.005,
) -> GridSearchResult:
    """Sweep (α, K), select by validation accuracy with a fairness tiebreak.

    Parameters
    ----------
    graph:
        Dataset (test metrics are recorded for reporting but never used for
        selection).
    base_config:
        Template config; ``alpha`` / ``top_k`` are overridden per candidate.
    alphas, ks:
        The grids (defaults: the paper's).
    seed:
        Shared seed so candidates differ only in hyper-parameters.
    accuracy_tolerance:
        Candidates within this of the best validation accuracy are
        considered tied; the tie with the smallest fairness proxy wins.
    """
    base_config = base_config or FairwosConfig()
    result = GridSearchResult()
    outcomes: list[tuple[GridPoint, FairwosResult]] = []
    for alpha in alphas:
        for top_k in ks:
            config = replace(base_config, alpha=alpha, top_k=top_k)
            fit = FairwosTrainer(config).fit(graph, seed=seed)
            # Fairness proxy: final weighted counterfactual disparity —
            # computable without the sensitive attribute.
            if fit.history["finetune_fair_loss"]:
                proxy = float(fit.history["finetune_fair_loss"][-1])
            else:
                proxy = float("inf")
            point = GridPoint(
                alpha=alpha,
                top_k=top_k,
                val_accuracy=fit.validation.accuracy,
                fair_proxy=proxy,
                test_accuracy=fit.test.accuracy,
                test_delta_sp=fit.test.delta_sp,
                test_delta_eo=fit.test.delta_eo,
            )
            result.points.append(point)
            outcomes.append((point, fit))

    best_val = max(point.val_accuracy for point, _ in outcomes)
    tied = [
        (point, fit)
        for point, fit in outcomes
        if point.val_accuracy >= best_val - accuracy_tolerance
    ]
    result.best, result.best_result = min(tied, key=lambda pair: pair[0].fair_proxy)
    return result
