"""Exact t-SNE (van der Maaten & Hinton, 2008) for the Fig. 7 visualisation.

Implements the reference algorithm: binary-search calibration of per-point
Gaussian bandwidths to a target perplexity, symmetrised input affinities,
Student-t low-dimensional kernel, gradient descent with momentum and early
exaggeration.  Exact ``O(N²)`` is fine at the paper's visualisation sizes
(NBA has 403 nodes, Occupation test split a few hundred).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.pca import pca

__all__ = ["tsne"]


def _pairwise_sq_distances(data: np.ndarray) -> np.ndarray:
    norms = (data**2).sum(axis=1)
    distances = norms[:, None] + norms[None, :] - 2.0 * data @ data.T
    np.maximum(distances, 0.0, out=distances)
    np.fill_diagonal(distances, 0.0)
    return distances


def _calibrate_affinities(
    sq_distances: np.ndarray, perplexity: float, tolerance: float = 1e-5
) -> np.ndarray:
    """Per-row Gaussian affinities whose entropy matches log(perplexity)."""
    n = sq_distances.shape[0]
    target_entropy = np.log(perplexity)
    affinities = np.zeros((n, n))
    for i in range(n):
        # One row at a time in float64: keeps the bisection and the
        # 1e-300 log guard exact even when the distance matrix is float32
        # (a no-op copy when it is already float64).
        row = np.delete(sq_distances[i], i).astype(np.float64)
        low, high = 1e-20, 1e20
        beta = 1.0
        for _ in range(64):
            weights = np.exp(-row * beta)
            total = weights.sum()
            if total <= 0:
                beta /= 2.0
                continue
            probs = weights / total
            entropy = -(probs * np.log(probs + 1e-300)).sum()
            error = entropy - target_entropy
            if abs(error) < tolerance:
                break
            if error > 0:
                low = beta
                beta = beta * 2.0 if high >= 1e20 else (beta + high) / 2.0
            else:
                high = beta
                beta = beta / 2.0 if low <= 1e-20 else (beta + low) / 2.0
        weights = np.exp(-row * beta)
        probs = weights / max(weights.sum(), 1e-300)
        affinities[i, np.arange(n) != i] = probs
    return affinities


def tsne(
    data: np.ndarray,
    rng: np.random.Generator,
    num_components: int = 2,
    perplexity: float = 30.0,
    iterations: int = 400,
    learning_rate: float = 100.0,
    early_exaggeration: float = 4.0,
    exaggeration_iterations: int = 50,
) -> np.ndarray:
    """Embed rows of ``data`` into ``num_components`` dimensions.

    Returns an ``(N, num_components)`` embedding, PCA-initialised for
    determinism given the rng (rng only jitters the init).
    """
    # Keep float32 inputs in float32 — the (N, F) matrix and the (N, N)
    # distance matrix stay at native precision instead of doubling in
    # memory; affinity calibration upcasts one row at a time, and the
    # descent runs on the (N, 2) embedding (float64 after the init jitter).
    data = np.asarray(data)
    if data.dtype not in (np.float32, np.float64):
        data = data.astype(np.float64)
    n = data.shape[0]
    if n < 5:
        raise ValueError(f"need at least 5 points, got {n}")
    perplexity = min(perplexity, (n - 1) / 3.0)

    conditional = _calibrate_affinities(_pairwise_sq_distances(data), perplexity)
    joint = (conditional + conditional.T) / (2.0 * n)
    np.maximum(joint, 1e-12, out=joint)

    init_components = min(num_components, min(data.shape))
    embedding = pca(data, init_components)[0]
    if init_components < num_components:
        embedding = np.pad(embedding, ((0, 0), (0, num_components - init_components)))
    embedding = embedding / max(embedding.std(), 1e-12) * 1e-4
    embedding = embedding + rng.normal(scale=1e-6, size=embedding.shape)

    velocity = np.zeros_like(embedding)
    for iteration in range(iterations):
        exaggeration = early_exaggeration if iteration < exaggeration_iterations else 1.0
        momentum = 0.5 if iteration < exaggeration_iterations else 0.8

        sq = _pairwise_sq_distances(embedding)
        student = 1.0 / (1.0 + sq)
        np.fill_diagonal(student, 0.0)
        q = student / max(student.sum(), 1e-300)
        np.maximum(q, 1e-12, out=q)

        coefficient = (exaggeration * joint - q) * student
        gradient = 4.0 * (
            np.diag(coefficient.sum(axis=1)) - coefficient
        ) @ embedding

        velocity = momentum * velocity - learning_rate * gradient
        embedding = embedding + velocity
        embedding = embedding - embedding.mean(axis=0, keepdims=True)
    return embedding
