"""Analysis utilities: PCA, k-means(++), exact t-SNE, correlation tools.

These replace the scikit-learn calls the paper's pipeline relies on (t-SNE
for Fig. 7, k-means for the KSMOTE baseline) — scikit-learn is unavailable
offline, and the algorithms are small enough to implement exactly.
"""

from repro.analysis.pca import pca
from repro.analysis.kmeans import assign_to_centers, kmeans, minibatch_kmeans
from repro.analysis.tsne import tsne
from repro.analysis.correlation import (
    StreamingCorrelation,
    correlation_with_vector,
    pearson_correlation,
)
from repro.analysis.embeddings import deepwalk_embeddings

__all__ = [
    "pca",
    "kmeans",
    "minibatch_kmeans",
    "assign_to_centers",
    "tsne",
    "StreamingCorrelation",
    "pearson_correlation",
    "correlation_with_vector",
    "deepwalk_embeddings",
]
