"""Lloyd's k-means with k-means++ initialisation, plus a minibatch variant.

:func:`minibatch_kmeans` is the sampled formulation used by KSMOTE's
large-graph path: each iteration assigns one random batch and moves the
centroids towards the batch means with per-centroid counts-based learning
rates (Sculley, WWW 2010), so no step ever touches an ``(N, k)`` distance
matrix.  A covering batch (``batch_size >= N``) delegates to the exact
:func:`kmeans`, which the full-vs-minibatch differential tests rely on.
"""

from __future__ import annotations

import numpy as np

__all__ = ["kmeans", "minibatch_kmeans", "assign_to_centers"]


def _kmeanspp_init(
    data: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centers by D² sampling."""
    n = data.shape[0]
    centers = np.empty((k, data.shape[1]))
    centers[0] = data[rng.integers(n)]
    closest_sq = ((data - centers[0]) ** 2).sum(axis=1)
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            centers[i:] = data[rng.integers(n, size=k - i)]
            break
        probs = closest_sq / total
        centers[i] = data[rng.choice(n, p=probs)]
        dist = ((data - centers[i]) ** 2).sum(axis=1)
        np.minimum(closest_sq, dist, out=closest_sq)
    return centers


def kmeans(
    data: np.ndarray,
    k: int,
    rng: np.random.Generator,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Cluster rows of ``data`` into ``k`` groups.

    Returns
    -------
    (assignments, centers, inertia):
        ``(N,)`` integer cluster ids, ``(k, F)`` centers and the final
        within-cluster sum of squared distances.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {data.shape}")
    n = data.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    centers = _kmeanspp_init(data, k, rng)
    assignments = np.zeros(n, dtype=np.int64)
    for _ in range(max_iterations):
        # Squared distances to each center: ||x||² − 2 x·c + ||c||².
        cross = data @ centers.T
        center_norms = (centers**2).sum(axis=1)
        distances = center_norms[None, :] - 2.0 * cross
        new_assignments = distances.argmin(axis=1)
        new_centers = centers.copy()
        for cluster in range(k):
            members = data[new_assignments == cluster]
            if len(members):
                new_centers[cluster] = members.mean(axis=0)
            else:
                # Re-seed empty clusters at the point farthest from its center.
                farthest = distances.min(axis=1).argmax()
                new_centers[cluster] = data[farthest]
        shift = float(np.abs(new_centers - centers).max())
        centers = new_centers
        assignments = new_assignments
        if shift < tolerance:
            break
    diffs = data - centers[assignments]
    inertia = float((diffs**2).sum())
    return assignments, centers, inertia


def assign_to_centers(
    data: np.ndarray, centers: np.ndarray, chunk_size: int = 8192
) -> tuple[np.ndarray, float]:
    """Nearest-center assignment in fixed-size chunks.

    Returns ``(assignments, inertia)`` while never holding more than a
    ``(chunk_size, k)`` distance block — the memory-bounded final pass of
    :func:`minibatch_kmeans`.
    """
    data = np.asarray(data, dtype=np.float64)
    centers = np.asarray(centers, dtype=np.float64)
    assignments = np.empty(data.shape[0], dtype=np.int64)
    inertia = 0.0
    center_norms = (centers**2).sum(axis=1)
    for start in range(0, data.shape[0], chunk_size):
        block = data[start : start + chunk_size]
        distances = center_norms[None, :] - 2.0 * (block @ centers.T)
        local = distances.argmin(axis=1)
        assignments[start : start + chunk_size] = local
        picked = np.take_along_axis(distances, local[:, None], axis=1).reshape(-1)
        inertia += float((picked + (block**2).sum(axis=1)).sum())
    return assignments, inertia


def minibatch_kmeans(
    data: np.ndarray,
    k: int,
    rng: np.random.Generator,
    batch_size: int = 1024,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Minibatch k-means with sampled centroid updates (Sculley, WWW 2010).

    Each iteration draws ``batch_size`` points without replacement, assigns
    them to the nearest centroid and moves every touched centroid towards
    its batch mean with the counts-based learning rate ``b_c / n_c`` (the
    running-mean update), so per-step cost is O(batch · k · F) regardless of
    N.  Initialisation is k-means++ on one sampled batch.  The final
    assignment (and inertia) is an exact chunked pass over all points.

    A covering batch (``batch_size >= N``) delegates to :func:`kmeans`
    verbatim — same rng draws, same result — which makes the sampled and
    exact formulations interchangeable on small inputs.

    Returns ``(assignments, centers, inertia)`` like :func:`kmeans`.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {data.shape}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    n = data.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    if batch_size >= n:
        return kmeans(data, k, rng, max_iterations, tolerance)
    if batch_size < k:
        raise ValueError(
            f"batch_size {batch_size} cannot seed {k} clusters; use >= k"
        )

    init_batch = data[rng.choice(n, size=batch_size, replace=False)]
    centers = _kmeanspp_init(init_batch, k, rng)
    counts = np.zeros(k)
    for _ in range(max_iterations):
        batch = data[rng.choice(n, size=batch_size, replace=False)]
        assignments, _ = assign_to_centers(batch, centers)
        batch_counts = np.bincount(assignments, minlength=k).astype(np.float64)
        counts += batch_counts
        new_centers = centers.copy()
        for cluster in np.flatnonzero(batch_counts):
            mean = batch[assignments == cluster].mean(axis=0)
            rate = batch_counts[cluster] / counts[cluster]
            new_centers[cluster] += rate * (mean - centers[cluster])
        shift = float(np.abs(new_centers - centers).max())
        centers = new_centers
        if shift < tolerance:
            break
    assignments, inertia = assign_to_centers(data, centers)
    return assignments, centers, inertia
