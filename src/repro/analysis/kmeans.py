"""Lloyd's k-means with k-means++ initialisation."""

from __future__ import annotations

import numpy as np

__all__ = ["kmeans"]


def _kmeanspp_init(
    data: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centers by D² sampling."""
    n = data.shape[0]
    centers = np.empty((k, data.shape[1]))
    centers[0] = data[rng.integers(n)]
    closest_sq = ((data - centers[0]) ** 2).sum(axis=1)
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            centers[i:] = data[rng.integers(n, size=k - i)]
            break
        probs = closest_sq / total
        centers[i] = data[rng.choice(n, p=probs)]
        dist = ((data - centers[i]) ** 2).sum(axis=1)
        np.minimum(closest_sq, dist, out=closest_sq)
    return centers


def kmeans(
    data: np.ndarray,
    k: int,
    rng: np.random.Generator,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Cluster rows of ``data`` into ``k`` groups.

    Returns
    -------
    (assignments, centers, inertia):
        ``(N,)`` integer cluster ids, ``(k, F)`` centers and the final
        within-cluster sum of squared distances.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {data.shape}")
    n = data.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    centers = _kmeanspp_init(data, k, rng)
    assignments = np.zeros(n, dtype=np.int64)
    for _ in range(max_iterations):
        # Squared distances to each center: ||x||² − 2 x·c + ||c||².
        cross = data @ centers.T
        center_norms = (centers**2).sum(axis=1)
        distances = center_norms[None, :] - 2.0 * cross
        new_assignments = distances.argmin(axis=1)
        new_centers = centers.copy()
        for cluster in range(k):
            members = data[new_assignments == cluster]
            if len(members):
                new_centers[cluster] = members.mean(axis=0)
            else:
                # Re-seed empty clusters at the point farthest from its center.
                farthest = distances.min(axis=1).argmax()
                new_centers[cluster] = data[farthest]
        shift = float(np.abs(new_centers - centers).max())
        centers = new_centers
        assignments = new_assignments
        if shift < tolerance:
            break
    diffs = data - centers[assignments]
    inertia = float((diffs**2).sum())
    return assignments, centers, inertia
