"""Pearson correlation helpers (used by FairRF and dataset diagnostics)."""

from __future__ import annotations

import numpy as np

__all__ = [
    "StreamingCorrelation",
    "pearson_correlation",
    "correlation_with_vector",
]


class StreamingCorrelation:
    """Welford-style running moments of a prediction stream vs fixed columns.

    Accumulates, batch by batch, the pooled second moments of a scalar
    prediction stream ``p`` and its co-moments with ``J`` feature columns,
    using Chan's parallel update (the batched generalisation of Welford's
    algorithm) so the result is numerically stable regardless of how the
    epoch is partitioned.

    Why FairRF needs it: the naive sampled estimator — the mean of
    per-batch squared correlations — is biased upward at small batches
    (``E[corr²_batch] > corr²_full`` because squaring a noisy estimate
    inflates it), which makes the closed-form feature-weight update chase
    noise and widens the sampled-vs-full ΔSP gap.  Pooling the moments over
    the whole epoch removes the per-batch squaring: for a fixed prediction
    vector the pooled estimate equals the full-data correlation exactly,
    and a single covering batch reproduces the per-batch value bit-for-bit
    (same centred sums, same ``1e-12`` guard).
    """

    def __init__(self, num_columns: int) -> None:
        if num_columns < 1:
            raise ValueError(f"num_columns must be >= 1, got {num_columns}")
        self.count = 0
        self.mean_p = 0.0
        self.m2_p = 0.0
        self.mean_x = np.zeros(num_columns)
        self.m2_x = np.zeros(num_columns)
        self.cross = np.zeros(num_columns)

    @property
    def num_columns(self) -> int:
        return self.mean_x.shape[0]

    def update(self, predictions: np.ndarray, columns: np.ndarray) -> None:
        """Merge one batch: ``predictions`` is ``(B,)``, ``columns`` ``(B, J)``."""
        predictions = np.asarray(predictions, dtype=np.float64).reshape(-1)
        columns = np.asarray(columns, dtype=np.float64)
        if columns.ndim != 2 or columns.shape != (predictions.size, self.num_columns):
            raise ValueError(
                f"columns must be ({predictions.size}, {self.num_columns}), "
                f"got {columns.shape}"
            )
        count_b = predictions.size
        if count_b == 0:
            return
        mean_p_b = predictions.mean()
        mean_x_b = columns.mean(axis=0)
        centered_p = predictions - mean_p_b
        centered_x = columns - mean_x_b
        m2_p_b = float((centered_p**2).sum())
        m2_x_b = (centered_x**2).sum(axis=0)
        cross_b = (centered_x * centered_p[:, None]).sum(axis=0)

        total = self.count + count_b
        # With count == 0 the correction terms vanish and the batch moments
        # are adopted verbatim, so no special case is needed.
        weight = self.count * count_b / total
        delta_p = mean_p_b - self.mean_p
        delta_x = mean_x_b - self.mean_x
        self.m2_p += m2_p_b + delta_p**2 * weight
        self.m2_x += m2_x_b + delta_x**2 * weight
        self.cross += cross_b + delta_p * delta_x * weight
        self.mean_p += delta_p * count_b / total
        self.mean_x += delta_x * count_b / total
        self.count = total

    def squared_correlations(self) -> np.ndarray:
        """Pooled squared Pearson correlation per column (0 for constants).

        Mirrors FairRF's differentiable per-batch formula — the ``1e-12``
        variance guard on the prediction side included — so a single
        covering batch yields the identical value.
        """
        out = np.zeros(self.num_columns)
        if self.count == 0:
            return out
        varying = self.m2_x > 0
        corr = self.cross[varying] / (
            np.sqrt(self.m2_p + 1e-12) * np.sqrt(self.m2_x[varying])
        )
        out[varying] = corr**2
        return out


def pearson_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson r between two 1-D arrays; 0 if either is constant."""
    a = np.asarray(a, dtype=np.float64).reshape(-1)
    b = np.asarray(b, dtype=np.float64).reshape(-1)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size < 2:
        raise ValueError("need at least two observations")
    a_centered = a - a.mean()
    b_centered = b - b.mean()
    denom = np.sqrt((a_centered**2).sum() * (b_centered**2).sum())
    if denom == 0:
        return 0.0
    return float(np.clip((a_centered * b_centered).sum() / denom, -1.0, 1.0))


def correlation_with_vector(matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """Pearson r of every column of ``matrix`` with ``vector``.

    Constant columns get correlation 0.  Used to rank candidate proxy
    features (RemoveR) and to audit how much each feature leaks the
    sensitive attribute.
    """
    matrix = np.asarray(matrix)
    vector = np.asarray(vector, dtype=np.float64).reshape(-1)
    if matrix.shape[0] != vector.shape[0]:
        raise ValueError(
            f"row mismatch: matrix has {matrix.shape[0]}, vector {vector.shape[0]}"
        )
    v_centered = vector - vector.mean()
    v_norm = np.sqrt((v_centered**2).sum())
    if matrix.dtype == np.float64:
        return _column_correlations(matrix, v_centered, v_norm)
    # Non-float64 matrices (float32 graphs, mmap-backed features) are
    # accumulated in float64 one column block at a time, so the peak extra
    # memory is one (N, 256) block rather than a full upcast copy.
    out = np.empty(matrix.shape[1])
    for start in range(0, matrix.shape[1], 256):
        block = matrix[:, start : start + 256].astype(np.float64)
        out[start : start + 256] = _column_correlations(block, v_centered, v_norm)
    return out


def _column_correlations(
    matrix: np.ndarray, v_centered: np.ndarray, v_norm: float
) -> np.ndarray:
    """Clipped per-column Pearson r against an already-centred vector."""
    centered = matrix - matrix.mean(axis=0, keepdims=True)
    column_norms = np.sqrt((centered**2).sum(axis=0))
    denom = column_norms * v_norm
    with np.errstate(invalid="ignore", divide="ignore"):
        corr = (centered * v_centered[:, None]).sum(axis=0) / denom
    corr[~np.isfinite(corr)] = 0.0
    return np.clip(corr, -1.0, 1.0)
