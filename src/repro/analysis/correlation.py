"""Pearson correlation helpers (used by FairRF and dataset diagnostics)."""

from __future__ import annotations

import numpy as np

__all__ = ["pearson_correlation", "correlation_with_vector"]


def pearson_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson r between two 1-D arrays; 0 if either is constant."""
    a = np.asarray(a, dtype=np.float64).reshape(-1)
    b = np.asarray(b, dtype=np.float64).reshape(-1)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size < 2:
        raise ValueError("need at least two observations")
    a_centered = a - a.mean()
    b_centered = b - b.mean()
    denom = np.sqrt((a_centered**2).sum() * (b_centered**2).sum())
    if denom == 0:
        return 0.0
    return float(np.clip((a_centered * b_centered).sum() / denom, -1.0, 1.0))


def correlation_with_vector(matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """Pearson r of every column of ``matrix`` with ``vector``.

    Constant columns get correlation 0.  Used to rank candidate proxy
    features (RemoveR) and to audit how much each feature leaks the
    sensitive attribute.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    vector = np.asarray(vector, dtype=np.float64).reshape(-1)
    if matrix.shape[0] != vector.shape[0]:
        raise ValueError(
            f"row mismatch: matrix has {matrix.shape[0]}, vector {vector.shape[0]}"
        )
    centered = matrix - matrix.mean(axis=0, keepdims=True)
    v_centered = vector - vector.mean()
    column_norms = np.sqrt((centered**2).sum(axis=0))
    v_norm = np.sqrt((v_centered**2).sum())
    denom = column_norms * v_norm
    with np.errstate(invalid="ignore", divide="ignore"):
        corr = (centered * v_centered[:, None]).sum(axis=0) / denom
    corr[~np.isfinite(corr)] = 0.0
    return np.clip(corr, -1.0, 1.0)
