"""Unsupervised node embeddings (DeepWalk as matrix factorisation).

Implements the NetMF insight (Qiu et al., WSDM 2018): DeepWalk's skip-gram
objective implicitly factorises a shifted PPMI matrix of the random-walk
co-occurrence distribution.  We build that matrix exactly from the
row-normalised adjacency (window-averaged transition powers) and factorise
it with a truncated SVD — deterministic, no sampling noise, and well suited
to the library's CPU-scale graphs.

Used as an alternative *structure-only* encoder backbone and by the examples
for unsupervised bias probing.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.normalize import row_normalize

__all__ = ["deepwalk_embeddings"]


def deepwalk_embeddings(
    adjacency: sp.spmatrix,
    dimensions: int = 16,
    window: int = 5,
    negative: float = 1.0,
) -> np.ndarray:
    """Deterministic DeepWalk embeddings via shifted-PPMI factorisation.

    Parameters
    ----------
    adjacency:
        Symmetric binary adjacency.
    dimensions:
        Embedding dimensionality d.
    window:
        Skip-gram window T — co-occurrence averages transition-matrix powers
        ``P¹ … P^T``.
    negative:
        Negative-sampling count b in the PMI shift ``log(x / b)``.

    Returns
    -------
    ``(N, d)`` float embedding matrix (isolated nodes embed at the origin).
    """
    if dimensions < 1:
        raise ValueError(f"dimensions must be >= 1, got {dimensions}")
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if negative <= 0:
        raise ValueError(f"negative must be positive, got {negative}")
    n = adjacency.shape[0]
    if dimensions > n:
        raise ValueError(f"dimensions {dimensions} exceeds node count {n}")

    transition = row_normalize(adjacency).toarray()
    degrees = np.asarray(sp.csr_matrix(adjacency).sum(axis=1)).reshape(-1)
    volume = degrees.sum()
    if volume == 0:
        return np.zeros((n, dimensions))

    # Window-averaged transition probabilities: (1/T) Σ_t P^t.
    power = np.eye(n)
    accumulated = np.zeros((n, n))
    for _ in range(window):
        power = power @ transition
        accumulated += power
    accumulated /= window

    # NetMF closed form: M = vol/b · diag(1/d) · mean-power · diag(1/d),
    # then PPMI = max(log M, 0).
    inv_degrees = np.zeros(n)
    nonzero = degrees > 0
    inv_degrees[nonzero] = 1.0 / degrees[nonzero]
    m = (volume / negative) * accumulated * inv_degrees[None, :]
    with np.errstate(divide="ignore"):
        ppmi = np.log(np.maximum(m, 1e-12))
    np.maximum(ppmi, 0.0, out=ppmi)

    u, singular_values, _ = np.linalg.svd(ppmi, full_matrices=False)
    return u[:, :dimensions] * np.sqrt(singular_values[:dimensions])
