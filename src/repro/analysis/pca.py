"""Principal component analysis via SVD."""

from __future__ import annotations

import numpy as np

__all__ = ["pca"]


def pca(data: np.ndarray, num_components: int) -> tuple[np.ndarray, np.ndarray]:
    """Project ``data`` onto its top principal components.

    Parameters
    ----------
    data:
        ``(N, F)`` matrix; rows are observations.
    num_components:
        Number of components to keep (≤ min(N, F)).

    Returns
    -------
    (projected, explained_variance_ratio):
        ``(N, num_components)`` scores and the fraction of variance each
        component explains.
    """
    # float32 inputs (the mmap/low-memory graph path) are kept in their
    # native dtype — LAPACK has a single-precision SVD — so the full matrix
    # is never upcast; anything non-float still lands on float64.
    data = np.asarray(data)
    if data.dtype not in (np.float32, np.float64):
        data = data.astype(np.float64)
    if data.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {data.shape}")
    max_components = min(data.shape)
    if not 1 <= num_components <= max_components:
        raise ValueError(
            f"num_components must be in [1, {max_components}], got {num_components}"
        )
    centered = data - data.mean(axis=0, keepdims=True)
    u, singular_values, _ = np.linalg.svd(centered, full_matrices=False)
    scores = u[:, :num_components] * singular_values[:num_components]
    variances = singular_values**2
    total = variances.sum()
    ratio = variances[:num_components] / total if total > 0 else np.zeros(num_components)
    return scores, ratio
